"""The columnar physical layout: dictionary encoding, indexes, sharing.

Pins the properties the vectorized engine's kernels rely on:

- global interning — equal values get equal codes across relations,
  lookups never grow the pool;
- :meth:`ColumnStore.key_index` — spans over a flat ``array('q')`` of
  row ids, with the same two key shapes as ``_key_getter``;
- memoization — one store per relation, one index per position tuple,
  one domain array per column;
- zero-copy sharing — ``project``/``rename``/``reorder`` alias the same
  code lists instead of re-encoding;
- header interning and the prefix projection fast path;
- the two-layout memory footprint report.
"""

from array import array

import pytest

from repro.relalg.columnar import (
    ColumnStore,
    _interned_pool_size,
    _min_typecode,
    clear_interning,
    decode_column,
    encode_value,
    interning_info,
    lookup_code,
    pool_epoch,
)
from repro.relalg.relation import Relation, intern_header


class TestInterning:
    def test_equal_values_equal_codes_across_relations(self):
        r = Relation(("a",), [("v1",), ("v2",)])
        s = Relation(("b",), [("v2",), ("v3",)])
        rc = r.columnar().codes[0]
        sc = s.columnar().codes[0]
        assert set(rc) & set(sc)  # "v2" got the same code in both

    def test_decode_round_trip(self):
        values = [(1, "x"), (2.5, None), (1, "x")]
        codes = [encode_value(v) for v in values]
        assert decode_column(codes) == values

    def test_lookup_does_not_insert(self):
        assert lookup_code(("columnar-test", "never-interned")) is None
        code = encode_value(("columnar-test", "never-interned"))
        assert lookup_code(("columnar-test", "never-interned")) == code

    def test_min_typecode_widths(self):
        assert _min_typecode(0) == "B"
        assert _min_typecode(255) == "B"
        assert _min_typecode(256) == "H"
        assert _min_typecode(1 << 16) == "L"
        assert _min_typecode(1 << 32) == "Q"


class TestColumnStore:
    def test_from_rows_aligns_columns(self):
        rel = Relation(("a", "b"), [(1, "x"), (2, "y")])
        store = rel.columnar()
        assert store.cardinality == 2
        rows = set(zip(decode_column(store.codes[0]), decode_column(store.codes[1])))
        assert rows == {(1, "x"), (2, "y")}

    def test_store_is_memoized_on_relation(self):
        rel = Relation(("a",), [(1,)])
        assert rel.columnar() is rel.columnar()

    def test_key_index_single_position_uses_bare_codes(self):
        rel = Relation(("a", "b"), [(1, 10), (1, 11), (2, 12)])
        store = rel.columnar()
        spans, row_ids = store.key_index((0,))
        assert isinstance(row_ids, array) and row_ids.typecode == "q"
        code_one = lookup_code(1)
        start, end = spans[code_one]  # bare code, not a 1-tuple
        assert end - start == 2
        assert store.key_index((0,)) is not store.key_index((1,))
        assert store.key_index((0,))[0] is spans  # memoized

    def test_key_index_multi_position_uses_code_tuples(self):
        rel = Relation(("a", "b", "c"), [(1, 2, 30), (1, 2, 31), (1, 3, 32)])
        store = rel.columnar()
        spans, row_ids = store.key_index((0, 1))
        key = (lookup_code(1), lookup_code(2))
        start, end = spans[key]
        matched = {row_ids[i] for i in range(start, end)}
        assert len(matched) == 2

    def test_domains_are_sorted_and_memoized(self):
        rel = Relation(("a",), [(3,), (1,), (2,), (1,)])
        store = rel.columnar()
        domain = store.domain(0)
        assert list(domain) == sorted(set(store.codes[0]))
        assert store.domain(0) is domain

    def test_share_aliases_code_lists(self):
        rel = Relation(("a", "b", "c"), [(1, 2, 3)])
        store = rel.columnar()
        shared = store.share((2, 0))
        assert shared.codes[0] is store.codes[2]
        assert shared.codes[1] is store.codes[0]
        assert shared.cardinality == store.cardinality

    def test_nbytes_positive_and_width_sensitive(self):
        small = ColumnStore(([0, 1, 2],), 3)
        assert small.nbytes() > 0
        wide = ColumnStore(([0, 1, 1 << 20],), 3)
        assert wide.nbytes() > small.nbytes()


class TestZeroCopyThroughRelation:
    @pytest.fixture
    def rel(self):
        rel = Relation(("a", "b", "c"), [(1, 2, 3), (4, 5, 6)])
        rel.columnar()
        return rel

    def test_project_shares_columns_when_distinct(self, rel):
        projected = rel.project(("c", "a"))
        assert projected._colstore is not None
        assert projected._colstore.codes[0] is rel.columnar().codes[2]

    def test_project_with_collapse_does_not_share(self):
        rel = Relation(("a", "b"), [(1, 10), (1, 20)])
        rel.columnar()
        projected = rel.project(("a",))  # collapses to one row
        assert projected._colstore is None

    def test_rename_shares_whole_store(self, rel):
        renamed = rel.rename({"a": "x"})
        assert renamed._colstore is rel.columnar()

    def test_reorder_shares_columns(self, rel):
        reordered = rel.reorder(("b", "c", "a"))
        assert reordered._colstore is not None
        assert reordered._colstore.codes[0] is rel.columnar().codes[1]

    def test_project_without_store_builds_nothing(self):
        rel = Relation(("a", "b"), [(1, 2)])
        assert rel.project(("b",))._colstore is None


class TestHeaderInterning:
    def test_equal_headers_are_same_object(self):
        r = Relation(("alpha", "beta"), [(1, 2)])
        s = Relation(tuple("alpha beta".split()), [(3, 4)])
        assert r.columns is s.columns

    def test_intern_header_idempotent(self):
        header = intern_header(("gamma", "delta"))
        assert intern_header(("gamma", "delta")) is header

    def test_operator_outputs_reuse_interned_headers(self):
        r = Relation(("a", "b"), [(1, 2)])
        s = Relation(("b", "c"), [(2, 3)])
        first = r.natural_join(s)
        second = r.natural_join(s)
        assert first.columns is second.columns


class TestMemoryFootprint:
    def test_footprint_reports_both_layouts(self):
        rel = Relation(("a", "b"), [(i, i % 7) for i in range(100)])
        report = rel.memory_footprint()
        assert report["cardinality"] == 100
        assert report["arity"] == 2
        assert report["row_layout_bytes"] > 0
        assert report["columnar_bytes"] > 0
        assert report["value_bytes"] > 0

    def test_columnar_layout_is_smaller_on_wide_tables(self):
        # 1000 rows x 4 columns of small-domain ints: codes pack into
        # one byte each, while the row layout pays a tuple per row.
        rows = [(i % 5, i % 7, i % 11, i % 13) for i in range(1000)]
        rel = Relation(("a", "b", "c", "d"), set(rows))
        report = rel.memory_footprint()
        assert report["columnar_bytes"] < report["row_layout_bytes"]


class TestClearInterning:
    """The pool-release hook.  The interning tables are process-global
    and append-only within an epoch; ``clear_interning()`` must actually
    return the memory (footprint regression) and must not let codes from
    the dead epoch leak into comparisons (stale stores are rebuilt)."""

    def test_footprint_shrinks_and_epoch_advances(self):
        Relation(("a",), [((f"pool-reg-{i}",),) for i in range(64)]).columnar()
        before = interning_info()
        assert before["values"] == _interned_pool_size() >= 64
        epoch = pool_epoch()
        clear_interning()
        after = interning_info()
        assert after["values"] == 0
        assert after["epoch"] == pool_epoch() == epoch + 1

    def test_stale_store_is_rebuilt_on_use(self):
        rel = Relation(("a",), [("x",), ("y",)])
        stale = rel.columnar()
        clear_interning()
        fresh = rel.columnar()
        assert fresh is not stale
        assert fresh.pool_epoch == pool_epoch()
        assert rel.columnar() is fresh  # re-memoized under the new epoch
        assert set(decode_column(fresh.codes[0])) == {"x", "y"}

    def test_codes_comparable_only_within_an_epoch(self):
        r = Relation(("a",), [("shared-value",)])
        old = r.columnar()
        clear_interning()
        s = Relation(("b",), [("shared-value",), ("other",)])
        new = s.columnar()
        assert old.pool_epoch != new.pool_epoch
        # Rebuilding r under the current epoch restores comparability.
        assert set(r.columnar().codes[0]) <= set(new.codes[0])

    def test_share_propagates_epoch(self):
        rel = Relation(("a", "b"), [(1, 2)])
        store = rel.columnar()
        assert store.share((1,)).pool_epoch == store.pool_epoch
