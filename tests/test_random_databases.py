"""Property tests over random *databases*, not just the paper's fixed one.

Most suites here use the six-tuple color relation; these generate random
catalogs (varying arities, cardinalities, value skew) and random queries
over them, then demand that every evaluation route agrees — the broadest
soundness net in the repo.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import METHODS, plan_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.relalg.database import Database
from repro.relalg.engine import evaluate
from repro.relalg.relation import Relation
from repro.sql.executor import execute
from repro.sql.generator import generate_sql
from repro.sql.parser import parse


@st.composite
def random_setups(draw):
    """A random catalog plus a random connected-ish query over it."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    relation_count = draw(st.integers(min_value=1, max_value=3))
    database = Database()
    arities = []
    for index in range(relation_count):
        arity = draw(st.integers(min_value=1, max_value=3))
        arities.append(arity)
        rows = {
            tuple(rng.randrange(4) for _ in range(arity))
            for _ in range(draw(st.integers(min_value=0, max_value=10)))
        }
        database.add(
            f"r{index + 1}",
            Relation(tuple(f"c{i + 1}" for i in range(arity)), rows),
        )
    atom_count = draw(st.integers(min_value=1, max_value=4))
    variable_pool = [f"X{i}" for i in range(1, 6)]
    atoms = []
    for _ in range(atom_count):
        index = rng.randrange(relation_count)
        terms = tuple(rng.choice(variable_pool) for _ in range(arities[index]))
        atoms.append(Atom(f"r{index + 1}", terms))
    all_vars = sorted({v for atom in atoms for v in atom.variable_set})
    free_count = draw(st.integers(min_value=1, max_value=len(all_vars)))
    query = ConjunctiveQuery(
        atoms=tuple(atoms), free_variables=tuple(all_vars[:free_count])
    )
    return query, database


def _brute_force_answers(query, database):
    """Reference semantics: enumerate all assignments over the active
    domain and keep those satisfying every atom."""
    from itertools import product

    domain = set()
    for name in database.names():
        for row in database.get(name).rows:
            domain.update(row)
    domain = sorted(domain, key=repr) or [0]
    variables = sorted(query.variables)
    facts = {name: database.get(name).rows for name in database.names()}
    answers = set()
    for values in product(domain, repeat=len(variables)):
        mapping = dict(zip(variables, values))
        if all(
            tuple(
                mapping[t] if isinstance(t, str) else t.value
                for t in atom.terms
            )
            in facts[atom.relation]
            for atom in query.atoms
        ):
            answers.add(tuple(mapping[v] for v in query.free_variables))
    return answers


@given(random_setups())
@settings(max_examples=40)
def test_all_methods_match_brute_force(setup):
    from repro.core import is_acyclic

    query, database = setup
    expected = _brute_force_answers(query, database)
    for method in METHODS:
        if method == "yannakakis" and not is_acyclic(query):
            continue  # rejects cyclic queries by design
        result, _ = evaluate(
            plan_query(query, method, rng=random.Random(0)), database
        )
        got = result.reorder(tuple(query.free_variables)).rows
        assert got == expected, method


@given(random_setups())
@settings(max_examples=40)
def test_sql_pipeline_matches_brute_force(setup):
    query, database = setup
    expected = _brute_force_answers(query, database)
    for method in ("naive", "straightforward", "bucket"):
        text = generate_sql(query, method, rng=random.Random(0))
        result = execute(parse(text), database)
        got = result.reorder(tuple(query.free_variables)).rows
        assert got == expected, method
