"""Tests for repro.service: protocol, prepared statements, server."""
