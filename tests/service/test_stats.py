"""Telemetry accounting: latency windows, counters, snapshots."""

from repro.service.stats import PERCENTILES, LatencyRecorder, ServiceStats


class TestLatencyRecorder:
    def test_empty_snapshot(self):
        snap = LatencyRecorder().snapshot()
        assert snap["count"] == 0
        assert snap["mean_s"] == 0.0
        assert all(snap[f"p{p}_s"] == 0.0 for p in PERCENTILES)

    def test_percentiles_ordered(self):
        recorder = LatencyRecorder()
        for ms in range(1, 101):
            recorder.record(ms / 1000)
        snap = recorder.snapshot()
        assert snap["p50_s"] <= snap["p95_s"] <= snap["p99_s"]
        assert abs(snap["p50_s"] - 0.050) < 0.005

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(0.25)
        snap = recorder.snapshot()
        assert snap["p50_s"] == snap["p99_s"] == 0.25

    def test_window_bounds_samples_but_not_count(self):
        recorder = LatencyRecorder(window=4)
        for _ in range(10):
            recorder.record(1.0)
        recorder.record(2.0)
        assert recorder.count == 11  # lifetime
        assert len(recorder._samples) == 4  # windowed
        # Old 1.0s samples fell out: percentiles reflect recent traffic.
        assert recorder.percentile(99) == 2.0


class TestServiceStats:
    def test_request_and_op_counters(self):
        stats = ServiceStats()
        stats.record_request("query")
        stats.record_request("query")
        stats.record_request("ping")
        snap = stats.snapshot()
        assert snap["requests"] == 3
        assert snap["ops"] == {"query": 2, "ping": 1}

    def test_error_codes_feed_special_counters(self):
        stats = ServiceStats()
        stats.record_error("timeout")
        stats.record_error("overloaded")
        stats.record_error("bad_request")
        snap = stats.snapshot()
        assert snap["timeouts"] == 1
        assert snap["admission_rejections"] == 1
        assert snap["errors"]["bad_request"] == 1

    def test_latency_classes_created_on_first_use(self):
        stats = ServiceStats()
        assert stats.latency("query_warm") is None
        stats.record_latency("query_warm", 0.002)
        assert stats.latency("query_warm").count == 1
        assert "query_warm" in stats.snapshot()["latency"]

    def test_batch_accounting(self):
        stats = ServiceStats()
        stats.record_batch(4)
        stats.record_batch(2)
        snap = stats.snapshot()
        assert snap["batches"] == 2
        assert snap["batched_requests"] == 6
        assert snap["mean_batch_size"] == 3.0

    def test_queue_peak_is_sticky(self):
        stats = ServiceStats()
        stats.set_queue_depth(5)
        stats.set_queue_depth(2)
        snap = stats.snapshot()
        assert snap["queue_depth"] == 2
        assert snap["queue_peak"] == 5
