"""Query shapes and prepared statements: canonicalization, the
param-relation rewrite, binding, and the LRU cache."""

import pytest

from repro.core.planner import plan_query
from repro.datalog import parse_rule
from repro.relalg.compiled import make_engine
from repro.relalg.database import Database, edge_database
from repro.relalg.engine import evaluate
from repro.relalg.relation import Relation
from repro.service.prepared import (
    PARAM_RELATION_PREFIX,
    PreparedStatementCache,
    canonicalize_query,
)


def graph_db() -> Database:
    db = Database()
    rows = [(i, (i * 3 + 1) % 7) for i in range(7)] + [(1, 4), (2, 5)]
    db.add("graph", Relation(("u", "w"), rows))
    return db


class TestCanonicalization:
    def test_same_shape_across_constants(self):
        s1, v1 = canonicalize_query(parse_rule("q(X) :- graph(3, X)."))
        s2, v2 = canonicalize_query(parse_rule("q(X) :- graph(5, X)."))
        assert s1.key == s2.key
        assert (v1, v2) == ((3,), (5,))

    def test_same_shape_across_alpha_renaming(self):
        s1, _ = canonicalize_query(
            parse_rule("q(A) :- graph(A, B), graph(B, 2).")
        )
        s2, _ = canonicalize_query(
            parse_rule("q(X) :- graph(X, Y), graph(Y, 2).")
        )
        assert s1.key == s2.key

    def test_different_constant_positions_differ(self):
        s1, _ = canonicalize_query(parse_rule("q(X) :- graph(3, X)."))
        s2, _ = canonicalize_query(parse_rule("q(X) :- graph(X, 3)."))
        assert s1.key != s2.key

    def test_each_occurrence_is_its_own_hole(self):
        shape, values = canonicalize_query(
            parse_rule("q(X) :- graph(3, X), graph(X, 3).")
        )
        assert shape.hole_count == 2
        assert values == (3, 3)

    def test_free_variable_positions_matter(self):
        s1, _ = canonicalize_query(parse_rule("q(X, Y) :- graph(X, Y)."))
        s2, _ = canonicalize_query(parse_rule("q(Y, X) :- graph(X, Y)."))
        assert s1.key != s2.key

    def test_shape_text_shows_holes(self):
        shape, _ = canonicalize_query(parse_rule("q(X) :- graph(7, X)."))
        assert "$0" in shape.text
        assert "7" not in shape.text


class TestPreparedStatement:
    def test_param_atoms_follow_host_atoms(self):
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(
            parse_rule("q(X) :- graph(2, X), graph(X, Y)."), "bucket"
        )
        relations = [atom.relation for atom in statement.query.atoms]
        assert relations[0] == "graph"
        assert relations[1].startswith(PARAM_RELATION_PREFIX)
        assert relations[2] == "graph"

    def test_bind_then_execute_matches_inline_constant(self):
        db = graph_db()
        cache = PreparedStatementCache()
        rule = "q(X) :- graph(2, X), graph(X, Y)."
        statement, values, _ = cache.prepare(parse_rule(rule), "bucket")
        statement.bind(db, values)
        import random

        expected, _ = evaluate(
            plan_query(parse_rule(rule), "bucket", rng=random.Random(0)),
            graph_db(),
        )
        engine = make_engine("compiled", db)
        assert engine.execute(statement.plan).rows == expected.rows

    def test_rebind_changes_answers(self):
        db = graph_db()
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(
            parse_rule("q(X) :- graph(2, X)."), "bucket"
        )
        engine = make_engine("compiled", db)
        statement.bind(db, (2,))
        rows_for_2 = engine.execute(statement.plan).rows
        statement.bind(db, (1,))
        rows_for_1 = engine.execute(statement.plan).rows
        assert rows_for_2 != rows_for_1
        direct, _ = evaluate(
            plan_query(parse_rule("q(X) :- graph(1, X)."), "bucket"), graph_db()
        )
        assert rows_for_1 == direct.rows

    def test_bind_same_value_is_version_neutral(self):
        db = graph_db()
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(
            parse_rule("q(X) :- graph(2, X)."), "bucket"
        )
        assert statement.bind(db, (2,)) == 1
        before = db.versions()
        assert statement.bind(db, (2,)) == 0  # same constant: no bump
        assert db.versions() == before

    def test_rebind_keeps_compiled_units_cached(self):
        """The tentpole claim: same shape + different constants reuses
        the compiled units — only param-dependent cache entries go."""
        db = graph_db()
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(
            parse_rule("q(X) :- graph(2, X), graph(X, Y)."), "bucket"
        )
        engine = make_engine("compiled", db)
        statement.bind(db, (2,))
        engine.execute(statement.plan)
        units_after_first = engine.cache_info().units
        assert units_after_first > 0
        statement.bind(db, (5,))
        engine.execute(statement.plan)
        info = engine.cache_info()
        assert info.units == units_after_first  # no recompilation
        assert info.hits > 0

    def test_bind_arity_mismatch(self):
        db = graph_db()
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(
            parse_rule("q(X) :- graph(2, X)."), "bucket"
        )
        with pytest.raises(ValueError, match="takes 1 parameter"):
            statement.bind(db, (1, 2))

    def test_unbind_clears_param_relations(self):
        db = graph_db()
        cache = PreparedStatementCache()
        statement, values, _ = cache.prepare(
            parse_rule("q(X) :- graph(2, X)."), "bucket"
        )
        statement.bind(db, values)
        name = statement.param_relations[0]
        assert db.get(name).cardinality == 1
        statement.unbind(db)
        assert db.get(name).cardinality == 0

    def test_columns_positional(self):
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(
            parse_rule("q(Y, X) :- graph(X, Y)."), "bucket"
        )
        assert len(statement.columns) == 2


class TestPreparedStatementCache:
    def test_hit_on_same_shape_different_constants(self):
        cache = PreparedStatementCache()
        first, _, hit1 = cache.prepare(parse_rule("q(X) :- graph(3, X)."), "bucket")
        second, _, hit2 = cache.prepare(parse_rule("q(X) :- graph(5, X)."), "bucket")
        assert (hit1, hit2) == (False, True)
        assert first is second
        assert cache.info()["hits"] == 1

    def test_method_is_part_of_the_key(self):
        cache = PreparedStatementCache()
        a, _, _ = cache.prepare(parse_rule("q(X) :- graph(3, X)."), "bucket")
        b, _, hit = cache.prepare(parse_rule("q(X) :- graph(3, X)."), "early")
        assert not hit
        assert a is not b

    def test_lru_eviction(self):
        cache = PreparedStatementCache(capacity=2)
        s1, _, _ = cache.prepare(parse_rule("q(X) :- graph(1, X)."), "bucket")
        cache.prepare(parse_rule("q(X) :- graph(X, Y), graph(Y, 1)."), "bucket")
        cache.prepare(parse_rule("q(X, Y) :- graph(X, Y)."), "bucket")
        assert len(cache) == 2
        assert cache.info()["evictions"] == 1
        assert cache.by_id(s1.statement_id) is None

    def test_statement_ids_are_stable_handles(self):
        cache = PreparedStatementCache()
        statement, _, _ = cache.prepare(parse_rule("q(X) :- graph(3, X)."), "bucket")
        assert cache.by_id(statement.statement_id) is statement
        assert cache.by_id(999) is None

    def test_edge_database_shapes(self, edge_db):
        # Shapes with no constants work too (hole_count == 0).
        cache = PreparedStatementCache()
        statement, values, _ = cache.prepare(
            parse_rule("q(X) :- edge(X, Y), edge(Y, X)."), "bucket"
        )
        assert values == ()
        assert statement.param_count == 0
        assert statement.bind(edge_db, ()) == 0
