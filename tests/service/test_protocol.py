"""Wire framing: encode/decode round trips, field checks, error codes."""

import json

import pytest

from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    request_field,
)


class TestFraming:
    def test_round_trip(self):
        message = {"op": "query", "id": 7, "rule": "q(X) :- edge(X, Y)."}
        assert decode_line(encode_message(message)) == message

    def test_encode_is_one_line(self):
        raw = encode_message({"op": "ping", "note": "a\nb"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1  # interior newline is escaped

    def test_compact_encoding(self):
        assert b": " not in encode_message({"a": 1, "b": 2})

    def test_decode_accepts_str(self):
        assert decode_line('{"op":"ping"}\n') == {"op": "ping"}

    def test_oversized_line_rejected(self):
        raw = b'{"pad":"' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError) as exc:
            decode_line(raw)
        assert exc.value.code == "bad_request"

    @pytest.mark.parametrize(
        "raw", [b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"str"\n', b"\xff\xfe\n"]
    )
    def test_bad_lines_raise_parse_errors(self, raw):
        with pytest.raises(ProtocolError) as exc:
            decode_line(raw)
        assert exc.value.code in ("parse_error", "bad_request")

    def test_non_serializable_values_coerced_via_str(self):
        # default=str: odd values degrade to strings instead of blowing
        # up the response path.
        raw = encode_message({"v": {1, 2}.__class__})
        assert json.loads(raw)


class TestRequestField:
    def test_present_and_typed(self):
        assert request_field({"n": 3}, "n", int) == 3

    def test_missing_required(self):
        with pytest.raises(ProtocolError) as exc:
            request_field({}, "op", str)
        assert exc.value.code == "bad_request"
        assert "op" in exc.value.message

    def test_missing_optional_is_none(self):
        assert request_field({}, "method", str, required=False) is None

    def test_wrong_type(self):
        with pytest.raises(ProtocolError):
            request_field({"session": "one"}, "session", int)

    def test_bool_is_not_int(self):
        with pytest.raises(ProtocolError):
            request_field({"session": True}, "session", int)

    def test_int_coerces_to_float(self):
        value = request_field({"timeout": 5}, "timeout", float)
        assert value == 5.0 and isinstance(value, float)


class TestResponses:
    def test_ok_echoes_id_and_fields(self):
        response = ok_response(42, rows=[])
        assert response == {"id": 42, "ok": True, "rows": []}

    def test_error_shape(self):
        response = error_response(None, "timeout", "too slow")
        assert response["ok"] is False
        assert response["error"] == {"code": "timeout", "message": "too slow"}

    def test_error_codes_are_closed_vocabulary(self):
        with pytest.raises(ValueError):
            error_response(1, "no_such_code", "boom")
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)
