"""Tests for the multi-process worker pool backend.

Pure-logic tests cover the router (sharding layout, read-your-writes
gating) and the shape wire format; live tests run a real
:class:`QueryService` with ``workers > 0`` — actual child processes over
loopback IPC — and exercise differential correctness against
``evaluate()``, read-your-writes under replication, queue-wait deadline
expiry at dequeue, and crash detection with respawn-from-snapshot.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.planner import plan_query
from repro.datalog import parse_rule
from repro.relalg.compiled import ENGINE_NAMES
from repro.relalg.database import Database, edge_database
from repro.relalg.engine import evaluate
from repro.relalg.relation import Relation
from repro.service import QueryService, ServiceClient, ServiceConfig, ServiceError
from repro.service.client import ServiceRetryableError
from repro.service.pool import WorkerHandle, choose_reader, plan_assignments
from repro.service.prepared import (
    PreparedStatement,
    canonicalize_query,
    shape_from_wire,
    shape_to_wire,
)

SLOW_RULE = "q(X) :- dense(X, Y), dense(Y, Z), dense(Z, X)."


def pool_database(dense_nodes: int = 0) -> Database:
    db = edge_database()
    rows = [(i, (i * 3 + 1) % 7) for i in range(7)] + [(1, 4), (2, 5)]
    db.add("graph", Relation(("u", "w"), rows))
    if dense_nodes:
        dense = [
            (i, j) for i in range(dense_nodes) for j in range(dense_nodes) if i != j
        ]
        db.add("dense", Relation(("u", "w"), dense))
    return db


class LivePool:
    """A QueryService (pool or legacy backend) on a background loop."""

    def __init__(self, databases=None, **config_kwargs):
        self.service = QueryService(
            databases or {"default": pool_database()},
            ServiceConfig(port=0, **config_kwargs),
        )
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.service.start(), self.loop).result(120)
        self.port = self.service.port

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def shutdown(self) -> None:
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop)
        try:
            future.result(60)
        except TimeoutError:
            dump = asyncio.run_coroutine_threadsafe(
                self._dump_tasks(), self.loop
            ).result(10)
            raise RuntimeError(f"stop() hung; pending tasks:\n{dump}")
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    @staticmethod
    async def _dump_tasks() -> str:
        import io
        import traceback

        out = io.StringIO()
        for task in asyncio.all_tasks():
            print(repr(task), file=out)
            task.print_stack(file=out)
        return out.getvalue()


@pytest.fixture
def live():
    started: list[LivePool] = []

    def factory(databases=None, **config_kwargs) -> LivePool:
        service = LivePool(databases, **config_kwargs)
        started.append(service)
        return service

    yield factory
    for service in started:
        service.shutdown()


class TestAssignments:
    def test_round_robin_primaries_with_replicas(self):
        layout = plan_assignments(["a", "b", "c"], workers=3, replicas=1)
        assert layout == {"a": (0, (1,)), "b": (1, (2,)), "c": (2, (0,))}

    def test_replicas_clamped_to_worker_count(self):
        layout = plan_assignments(["a"], workers=2, replicas=5)
        assert layout["a"] == (0, (1,))  # not 5 replicas, and never itself

    def test_single_worker_has_no_replicas(self):
        assert plan_assignments(["a", "b"], workers=1, replicas=2) == {
            "a": (0, ()),
            "b": (0, ()),
        }

    def test_layout_is_deterministic_in_name_order(self):
        one = plan_assignments(["z", "a", "m"], workers=2, replicas=1)
        two = plan_assignments(["m", "z", "a"], workers=2, replicas=1)
        assert one == two


class TestReadRouting:
    @staticmethod
    def handles(*applied):
        out = []
        for worker_id, seq in enumerate(applied):
            handle = WorkerHandle(worker_id)
            handle.applied_seq = {"db": seq}
            out.append(handle)
        return out

    def test_stale_replica_excluded_until_caught_up(self):
        primary, replica = self.handles(5, 3)
        chosen, gated = choose_reader(
            [primary, replica], "db", need_seq=5, primary_id=0, rotation=1
        )
        assert chosen is primary and gated is True
        # Once the replica has applied the session's writes it is back
        # in the candidate set.
        replica.applied_seq["db"] = 5
        chosen, gated = choose_reader(
            [primary, replica], "db", need_seq=5, primary_id=0, rotation=1
        )
        assert chosen is replica and gated is False

    def test_primary_always_eligible_even_behind_watermark(self):
        # The primary's queue ordered the write before this read, so it
        # serves reads regardless of its recorded watermark.
        (primary,) = self.handles(0)
        chosen, gated = choose_reader(
            [primary], "db", need_seq=9, primary_id=0, rotation=0
        )
        assert chosen is primary and gated is False

    def test_least_outstanding_wins(self):
        primary, replica = self.handles(1, 1)
        primary.inflight = object()  # one request outstanding
        chosen, _ = choose_reader(
            [primary, replica], "db", need_seq=0, primary_id=0, rotation=0
        )
        assert chosen is replica


class TestShapeWire:
    def test_round_trip_preserves_key_template_and_text(self):
        shape, values = canonicalize_query(
            parse_rule("q(X, Y) :- graph(2, X), graph(X, Y), graph(Y, 7).")
        )
        rebuilt = shape_from_wire(shape_to_wire(shape))
        assert rebuilt.key == shape.key
        assert rebuilt.template == shape.template
        assert rebuilt.hole_count == shape.hole_count == len(values)
        assert rebuilt.text == shape.text

    def test_rebuilt_statement_is_executable(self):
        db = pool_database()
        shape, values = canonicalize_query(
            parse_rule("q(X) :- graph(2, X), graph(X, Y).")
        )
        local = PreparedStatement(7, shape, "bucket")
        remote = PreparedStatement(7, shape_from_wire(shape_to_wire(shape)), "bucket")
        assert remote.param_relations == local.param_relations
        remote.bind(db, values)
        result, _ = evaluate(remote.plan, db)
        expected, _ = evaluate(
            plan_query(
                parse_rule("q(X) :- graph(2, X), graph(X, Y)."),
                "bucket",
                rng=random.Random(0),
            ),
            pool_database(),
        )
        assert result.rows == expected.rows


class TestPoolQueries:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_served_rows_match_direct_evaluate(self, live, engine):
        rules = [
            "q(X) :- edge(X, Y), edge(Y, X).",
            "q(X) :- graph(2, X), graph(X, Y).",
            "q(X, Y) :- graph(X, Y), graph(Y, 4).",
        ]
        server = live(workers=2, replicas=1)
        with server.client() as client:
            session = client.open_session(engine=engine)
            for rule in rules:
                served = client.query(session, rule)
                expected, _ = evaluate(
                    plan_query(parse_rule(rule), "bucket", rng=random.Random(0)),
                    pool_database(),
                    engine=engine,
                )
                assert {tuple(row) for row in served["rows"]} == expected.rows, rule
                # Same shape, warm second run, same rows.
                again = client.query(session, rule)
                assert again["cached"] is True
                assert again["rows"] == served["rows"]

    def test_prepare_execute_and_shared_statements(self, live):
        server = live(workers=2, replicas=1)
        with server.client() as client:
            one = client.open_session(engine="interpreted")
            two = client.open_session(engine="compiled")
            p1 = client.prepare(one, "q(X) :- graph(3, X).")
            p2 = client.prepare(two, "q(X) :- graph(6, X).")
            # The statement registry lives in the front end, so both
            # sessions (routed to different workers) share one id.
            assert p1["statement"] == p2["statement"]
            assert p2["cached"] is True
            for session, anchor in ((one, 2), (two, 5), (one, 2)):
                answer = client.execute(session, p1["statement"], [anchor])
                rule = f"q(X) :- graph({anchor}, X)."
                expected, _ = evaluate(
                    plan_query(parse_rule(rule), "bucket", rng=random.Random(0)),
                    pool_database(),
                )
                assert {tuple(r) for r in answer["rows"]} == expected.rows

    def test_execute_unknown_statement_and_bad_params(self, live):
        server = live(workers=2, replicas=1)
        with server.client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.execute(session, 12345, [])
            assert exc.value.code == "unknown_statement"
            prepared = client.prepare(session, "q(X) :- graph(2, X).")
            with pytest.raises(ServiceError) as exc:
                client.execute(session, prepared["statement"], [1, 2])
            assert exc.value.code == "bad_request"

    def test_error_codes_match_legacy_backend(self, live):
        server = live(workers=2, replicas=1)
        with server.client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.query(session, "not datalog at all")
            assert exc.value.code == "query_error"
            with pytest.raises(ServiceError) as exc:
                client.query(session, "q(X) :- nothere(X, Y).")
            assert exc.value.code == "unknown_relation"
            with pytest.raises(ServiceError) as exc:
                client.update(session, "nothere", insert=[[1, 2]])
            assert exc.value.code == "unknown_relation"


class TestReadYourWrites:
    def test_session_reads_observe_own_writes_immediately(self, live):
        """The documented read-your-writes guarantee: within a session,
        a read issued right after an acknowledged write always observes
        it, even with replicas that may not have applied it yet."""
        server = live(workers=2, replicas=1)
        with server.client() as client:
            session = client.open_session()
            for i in range(15):
                updated = client.update(
                    session, "graph", insert=[[100 + i, 900 + i]]
                )
                assert updated["inserted"] == 1
                anchored = client.query(session, f"q(X) :- graph({100 + i}, X).")
                assert [900 + i] in anchored["rows"], f"write {i} not visible"
            snap = client.stats_snapshot()
            pool = snap["pool"]
            assert pool["write_seq"]["default"] == 15
            assert snap["service"]["errors"] == {}

    def test_other_sessions_converge_after_replication(self, live):
        server = live(workers=2, replicas=1)
        with server.client() as client:
            writer = client.open_session()
            client.update(writer, "graph", insert=[[300, 301]])
            # Wait for the replica watermark to catch up, then any
            # session on any worker must see the row.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if max(client.stats_snapshot()["pool"]["replica_lag"].values()) == 0:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("replica never caught up")
            reader = client.open_session()
            for _ in range(8):  # hits both primary and replica over rotation
                rows = client.query(reader, "q(X) :- graph(300, X).")["rows"]
                assert rows == [[301]]

    def test_version_field_matches_legacy_semantics(self, live):
        server = live(workers=2, replicas=1)
        with server.client() as client:
            session = client.open_session()
            first = client.update(session, "graph", insert=[[50, 60]])
            second = client.update(session, "graph", insert=[[50, 60]])
            assert second["inserted"] == 0
            assert second["version"] == first["version"]  # no-op delta


class TestPoolAdmission:
    def test_timeout_zero_expires_at_dequeue(self, live):
        server = live(workers=1)
        with server.client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.request(
                    "query", session=session, rule="q(X) :- edge(X, Y).", timeout=0
                )
            assert exc.value.code == "timeout"

    def test_expired_update_behind_slow_query_never_executes(self, live):
        """A queue-expired request is dropped at dequeue *without
        executing*: the update queued behind an in-flight slow query
        times out and must leave the catalog untouched, while the
        healthy request queued alongside it still completes."""
        server = live(
            databases={"default": pool_database(dense_nodes=80)}, workers=1
        )
        with server.client() as slow_client, server.client() as upd_client, \
                server.client() as read_client:
            slow = slow_client.open_session()
            upd = upd_client.open_session()
            read = read_client.open_session()
            with ThreadPoolExecutor(max_workers=3) as threads:
                slow_future = threads.submit(slow_client.query, slow, SLOW_RULE)
                time.sleep(0.15)  # let the slow query reach the worker
                update_future = threads.submit(
                    upd_client.request,
                    "update",
                    session=upd,
                    relation="graph",
                    insert=[[500, 600]],
                    timeout=0,
                )
                read_future = threads.submit(
                    read_client.query, read, "q(X) :- graph(2, X)."
                )
                assert slow_future.result(60)["cardinality"] >= 1
                with pytest.raises(ServiceError) as exc:
                    update_future.result(60)
                assert exc.value.code == "timeout"
                assert read_future.result(60)["rows"]
            # The expired update never ran anywhere.
            after = read_client.query(read, "q(X) :- graph(500, X).")
            assert after["rows"] == []
            snap = read_client.stats_snapshot()
            assert snap["pool"]["write_seq"]["default"] == 0


class TestCrashRecovery:
    def test_worker_crash_fails_inflight_then_respawns_with_data(self, live):
        server = live(workers=1)
        with server.client() as client:
            session = client.open_session()
            updated = client.update(session, "graph", insert=[[77, 88]])
            assert updated["inserted"] == 1
            assert [88] in client.query(session, "q(X) :- graph(77, X).")["rows"]

            pid = int(client.stats_snapshot()["pool"]["workers"]["0"]["pid"])
            os.kill(pid, signal.SIGKILL)
            time.sleep(0.3)

            # First request after the kill hits the dead socket: the
            # pump fails it with the retryable worker_failed code.
            with pytest.raises(ServiceRetryableError) as exc:
                client.query(session, "q(X) :- graph(77, X).")
            assert exc.value.code == "worker_failed"

            # Retrying (the documented client contract for retryable
            # codes) eventually lands on the respawned worker, which was
            # bootstrapped from the front end's mirror: the acknowledged
            # write survived the crash.
            deadline = time.monotonic() + 60
            rows = None
            while time.monotonic() < deadline:
                try:
                    rows = client.query(session, "q(X) :- graph(77, X).")["rows"]
                    break
                except ServiceRetryableError:
                    time.sleep(0.1)
            assert rows is not None, "worker never respawned"
            assert [88] in rows
            workers = client.stats_snapshot()["pool"]["workers"]["0"]
            assert workers["respawns"] >= 1
            assert workers["alive"] is True


class TestPoolStats:
    def test_pool_block_shape_and_reset(self, live):
        server = live(workers=2, replicas=1)
        with server.client() as client:
            session = client.open_session()
            for _ in range(6):
                client.query(session, "q(X) :- edge(X, Y), edge(Y, X).")
            snap = client.stats_snapshot()
            pool = snap["pool"]
            assert snap["config"]["workers"] == 2
            assert snap["config"]["replicas"] == 1
            assert set(pool["workers"]) == {"0", "1"}
            worker = pool["workers"]["0"]
            for key in (
                "pid",
                "alive",
                "queue_depth",
                "inflight",
                "dispatched",
                "completed",
                "errors",
                "respawns",
                "applied_seq",
            ):
                assert key in worker
            assert pool["reads_primary"] + pool["reads_replica"] == 6
            assert pool["reads_replica"] > 0  # rotation used the replica
            assert pool["assignments"]["default"]["primary"] == 0
            assert pool["assignments"]["default"]["replicas"] == [1]

            # The resetting snapshot returns the pre-reset window; the
            # next snapshot starts clean (per-worker counters included).
            pre = client.reset_stats()
            assert pre["service"]["requests"] >= 7
            post = client.stats_snapshot()
            assert post["service"]["requests"] == 1  # just this stats call
            assert post["pool"]["reads_primary"] + post["pool"]["reads_replica"] == 0
            assert post["pool"]["workers"]["0"]["dispatched"] == 0


class FlakyServer(threading.Thread):
    """Accepts connections; drops the first one on its first request,
    then answers pings normally — exercising client reconnect."""

    def __init__(self) -> None:
        super().__init__(daemon=True)
        import socket

        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self.dropped = False

    def run(self) -> None:
        import json

        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                stream = conn.makefile("rb")
                while True:
                    line = stream.readline()
                    if not line:
                        break
                    if not self.dropped:
                        self.dropped = True
                        break  # close mid-request: client sees EOF
                    message = json.loads(line)
                    reply = {"id": message.get("id"), "ok": True, "pong": True}
                    conn.sendall((json.dumps(reply) + "\n").encode())

    def close(self) -> None:
        self.sock.close()


class TestClientReconnect:
    def test_connection_loss_is_retryable_and_reconnects(self):
        server = FlakyServer()
        server.start()
        try:
            client = ServiceClient(
                "127.0.0.1", server.port, reconnect_backoff=0.01
            )
            with pytest.raises(ServiceRetryableError) as exc:
                client.ping()
            assert exc.value.code == "connection_lost"
            assert client.reconnects == 1
            # The reconnected socket works; the retry is the caller's
            # explicit decision, not something the client does silently.
            assert client.ping() is True
            client.close()
        finally:
            server.close()

    def test_reconnect_exhaustion_raises_retryable(self):
        server = FlakyServer()  # never started: connects but nobody accepts>backlog
        port = server.port
        client = ServiceClient(
            "127.0.0.1", port, reconnect_attempts=2, reconnect_backoff=0.01
        )
        server.close()  # now every reconnect attempt is refused
        with pytest.raises(ServiceRetryableError) as exc:
            client.ping()
        assert exc.value.code == "connection_lost"
        client.close()

    def test_retryable_codes_raise_subclass(self, live):
        server = live(workers=1)
        with server.client() as client:
            session = client.open_session()
            with pytest.raises(ServiceRetryableError) as exc:
                client.request(
                    "query", session=session, rule="q(X) :- edge(X, Y).", timeout=0
                )
            assert exc.value.code == "timeout"
            # Non-retryable errors stay plain ServiceError.
            with pytest.raises(ServiceError) as exc:
                client.query(session, "nonsense")
            assert not isinstance(exc.value, ServiceRetryableError)
