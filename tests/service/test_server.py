"""End-to-end service tests: a live asyncio server on a loopback socket,
exercised through the blocking :class:`ServiceClient`.

The event loop runs in a background thread so the (synchronous) tests
can use the same client code a real script would.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.planner import plan_query
from repro.datalog import parse_rule
from repro.relalg.compiled import ENGINE_NAMES
from repro.relalg.database import Database, edge_database
from repro.relalg.engine import evaluate
from repro.relalg.relation import Relation
from repro.service import QueryService, ServiceClient, ServiceConfig, ServiceError


def service_database() -> Database:
    db = edge_database()
    rows = [(i, (i * 3 + 1) % 7) for i in range(7)] + [(1, 4), (2, 5)]
    db.add("graph", Relation(("u", "w"), rows))
    return db


class LiveService:
    """A QueryService running on a background event-loop thread."""

    def __init__(self, databases=None, **config_kwargs):
        self.service = QueryService(
            databases or {"default": service_database()},
            ServiceConfig(port=0, **config_kwargs),
        )
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.service.start(), self.loop).result(10)
        self.port = self.service.port

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def live():
    started: list[LiveService] = []

    def factory(databases=None, **config_kwargs) -> LiveService:
        service = LiveService(databases, **config_kwargs)
        started.append(service)
        return service

    yield factory
    for service in started:
        service.shutdown()


class TestLifecycle:
    def test_ping(self, live):
        with live().client() as client:
            assert client.ping() is True

    def test_session_open_close(self, live):
        with live().client() as client:
            session = client.open_session(engine="compiled", method="early")
            closed = client.close_session(session)
            assert closed["session"] == session
            with pytest.raises(ServiceError) as exc:
                client.query(session, "q(X) :- edge(X, Y).")
            assert exc.value.code == "unknown_session"

    def test_unknown_database(self, live):
        with live().client() as client:
            with pytest.raises(ServiceError) as exc:
                client.open_session(database="nope")
            assert exc.value.code == "unknown_database"

    def test_unknown_op(self, live):
        with live().client() as client:
            with pytest.raises(ServiceError) as exc:
                client.request("frobnicate")
            assert exc.value.code == "unknown_op"

    def test_session_limit(self, live):
        with live(max_sessions=1).client() as client:
            client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.open_session()
            assert exc.value.code == "overloaded"

    def test_malformed_line_gets_error_response(self, live):
        server = live()
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "parse_error"


class TestQueries:
    def test_query_round_trip(self, live):
        with live().client() as client:
            session = client.open_session()
            answer = client.query(session, "q(X) :- edge(X, Y), edge(Y, X).")
            assert answer["cached"] is False
            # Columns are the canonical (positional) head variables.
            assert len(answer["columns"]) == 1
            assert {tuple(row) for row in answer["rows"]} == {(1,), (2,), (3,)}

    def test_same_shape_different_constants_hits_cache(self, live):
        server = live()
        with server.client() as client:
            session = client.open_session(engine="compiled")
            first = client.query(session, "q(X) :- graph(2, X), graph(X, Y).")
            assert first["cached"] is False
            second = client.query(session, "q(X) :- graph(5, X), graph(X, Y).")
            assert second["cached"] is True
            assert second["statement"] == first["statement"]
            # The shape cache hit means no second plan; the compiled-unit
            # cache retained every unit across the rebind.
            info = client.stats_snapshot()["databases"]["default"]
            assert info["prepared"]["hits"] >= 1
            assert info["prepared"]["misses"] == 1
            assert info["engines"]["compiled"]["hits"] > 0

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_served_rows_match_direct_evaluate(self, live, engine):
        rules = [
            "q(X) :- edge(X, Y), edge(Y, Z), edge(Z, X).",
            "q(X) :- graph(2, X), graph(X, Y).",
            "q(X, Y) :- graph(X, Y), graph(Y, 4).",
        ]
        server = live()
        with server.client() as client:
            session = client.open_session(engine=engine)
            for rule in rules:
                served = client.query(session, rule)
                expected, _ = evaluate(
                    plan_query(parse_rule(rule), "bucket", rng=random.Random(0)),
                    service_database(),
                    engine=engine,
                )
                assert {tuple(row) for row in served["rows"]} == expected.rows, rule

    def test_method_override_per_request(self, live):
        with live().client() as client:
            session = client.open_session(method="bucket")
            answer = client.query(
                session, "q(X) :- edge(X, Y), edge(Y, X).", method="early"
            )
            assert answer["cached"] is False  # different method = new statement

    def test_syntax_error_maps_to_query_error(self, live):
        with live().client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.query(session, "this is not datalog")
            assert exc.value.code == "query_error"

    def test_unknown_relation(self, live):
        with live().client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.query(session, "q(X) :- nothere(X, Y).")
            assert exc.value.code == "unknown_relation"


class TestPreparedExecution:
    def test_prepare_then_execute_with_params(self, live):
        with live().client() as client:
            session = client.open_session(engine="vectorized")
            prepared = client.prepare(session, "q(X) :- graph(2, X), graph(X, Y).")
            assert prepared["params"] == 1
            assert prepared["default_params"] == [2]
            for anchor in (2, 5, 2):
                answer = client.execute(session, prepared["statement"], [anchor])
                rule = f"q(X) :- graph({anchor}, X), graph(X, Y)."
                expected, _ = evaluate(
                    plan_query(parse_rule(rule), "bucket", rng=random.Random(0)),
                    service_database(),
                )
                assert {tuple(r) for r in answer["rows"]} == expected.rows

    def test_execute_unknown_statement(self, live):
        with live().client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.execute(session, 12345, [])
            assert exc.value.code == "unknown_statement"

    def test_execute_wrong_arity(self, live):
        with live().client() as client:
            session = client.open_session()
            prepared = client.prepare(session, "q(X) :- graph(2, X).")
            with pytest.raises(ServiceError) as exc:
                client.execute(session, prepared["statement"], [1, 2])
            assert exc.value.code == "bad_request"

    def test_non_scalar_params_rejected(self, live):
        with live().client() as client:
            session = client.open_session()
            prepared = client.prepare(session, "q(X) :- graph(2, X).")
            with pytest.raises(ServiceError) as exc:
                client.execute(session, prepared["statement"], [[1]])
            assert exc.value.code == "bad_request"

    def test_statements_shared_across_sessions(self, live):
        with live().client() as client:
            one = client.open_session(engine="interpreted")
            two = client.open_session(engine="compiled")
            p1 = client.prepare(one, "q(X) :- graph(3, X).")
            p2 = client.prepare(two, "q(X) :- graph(6, X).")
            assert p1["statement"] == p2["statement"]
            assert p2["cached"] is True


class TestUpdates:
    def test_update_visible_to_queries(self, live):
        with live().client() as client:
            session = client.open_session()
            before = client.query(session, "q(X) :- graph(50, X).")
            assert before["rows"] == []
            updated = client.update(session, "graph", insert=[[50, 60]])
            assert updated["inserted"] == 1
            after = client.execute(session, before["statement"], [50])
            assert [list(r) for r in after["rows"]] == [[60]]
            deleted = client.update(session, "graph", delete=[[50, 60]])
            assert deleted["deleted"] == 1

    def test_update_bumps_version_only_on_change(self, live):
        with live().client() as client:
            session = client.open_session()
            first = client.update(session, "graph", insert=[[50, 60]])
            second = client.update(session, "graph", insert=[[50, 60]])
            assert second["inserted"] == 0
            assert second["version"] == first["version"]  # no-op delta

    def test_update_unknown_relation(self, live):
        with live().client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.update(session, "nothere", insert=[[1, 2]])
            assert exc.value.code == "unknown_relation"


def dense_database(nodes: int = 80) -> Database:
    db = service_database()
    db.add(
        "dense",
        Relation(
            ("u", "w"),
            [(i, j) for i in range(nodes) for j in range(nodes) if i != j],
        ),
    )
    return db


class TestAdmissionControl:
    def test_request_timeout_zero_expires_in_queue(self, live):
        with live().client() as client:
            session = client.open_session()
            with pytest.raises(ServiceError) as exc:
                client.request(
                    "query",
                    session=session,
                    rule="q(X) :- edge(X, Y).",
                    timeout=0,
                )
            assert exc.value.code == "timeout"

    def test_expired_request_mid_batch_never_executes(self, live):
        """An expired request drained in the same batch as a healthy one
        fails with ``timeout`` at dequeue and must not run: the update
        leaves no trace while the query beside it completes."""
        server = live(databases={"default": dense_database()})
        with server.client() as slow_client, server.client() as upd_client, \
                server.client() as read_client:
            slow = slow_client.open_session()
            upd = upd_client.open_session()
            read = read_client.open_session()
            slow_rule = "q(X) :- dense(X, Y), dense(Y, Z), dense(Z, X)."
            with ThreadPoolExecutor(max_workers=3) as threads:
                slow_future = threads.submit(slow_client.query, slow, slow_rule)
                time.sleep(0.15)  # slow query now occupies the executor
                update_future = threads.submit(
                    upd_client.request,
                    "update",
                    session=upd,
                    relation="graph",
                    insert=[[500, 600]],
                    timeout=0,
                )
                read_future = threads.submit(
                    read_client.query, read, "q(X) :- graph(2, X)."
                )
                assert slow_future.result(60)["cardinality"] >= 1
                with pytest.raises(ServiceError) as exc:
                    update_future.result(60)
                assert exc.value.code == "timeout"
                assert read_future.result(60)["rows"]
            after = read_client.query(read, "q(X) :- graph(500, X).")
            assert after["rows"] == []

    def test_stats_reset_clears_counters_and_latency(self, live):
        with live().client() as client:
            session = client.open_session()
            client.query(session, "q(X) :- edge(X, Y).")
            pre = client.reset_stats()
            assert pre["service"]["requests"] >= 3
            assert "query_cold" in pre["service"]["latency"]
            post = client.stats_snapshot()
            assert post["service"]["requests"] == 1  # just this stats op
            # Only post-reset traffic (stats ops) left in the window.
            assert set(post["service"]["latency"]) <= {"stats"}
            assert post["service"]["ops"] == {"stats": 1}

    def test_stats_snapshot_shape(self, live):
        server = live()
        with server.client() as client:
            session = client.open_session()
            client.query(session, "q(X) :- edge(X, Y).")
            snap = client.stats_snapshot()
        assert snap["sessions"] == 1
        service_block = snap["service"]
        assert service_block["requests"] >= 3
        assert "query_cold" in service_block["latency"]
        assert snap["config"]["queue_limit"] == 256
        database_block = snap["databases"]["default"]
        assert database_block["plans_by_method"] == {"bucket": 1}
        assert database_block["prepared"]["entries"] == 1
