"""Differential property suite: interpreted vs compiled vs vectorized.

The compiled backends' acceptance contract is that they are *observably
identical* to the interpreted engine on every plan any of them can run —
same answer relation, same logical work counters (so the paper's
plan-cost figures are engine-independent) — while being allowed to
materialize fewer physical rows (``rows_built``), which is the whole
point of fusion.  The vectorized columnar engine additionally replaces
row sets with dictionary-encoded column batches, so this suite is the
proof that the encoding round-trips exactly.  It hammers the three-way
contract from three directions:

- random **acyclic queries** (mediator chains/stars/snowflakes) planned
  by all six planning methods, under both cache modes;
- random **bushy plans** over the edge relation — shapes no planner
  emits (nested join operands, stacked projections, cross products);
- random **databases** (varying arities, cardinalities, skew, constants
  via repeated variables) with random queries over them.

Deep-plan (2000-atom) coverage lives in ``tests/test_deep_plans.py``.
"""

import random

from hypothesis import given, settings

from repro.core import is_acyclic
from repro.core.planner import METHODS, plan_query
from repro.relalg.compiled import CompiledEngine, VectorizedEngine
from repro.relalg.database import edge_database
from repro.relalg.engine import Engine

from tests.core.test_yannakakis_property import acyclic_instances
from tests.test_random_databases import random_setups
from tests.test_random_plans import random_plans

LOGICAL = (
    "joins",
    "semijoins",
    "projections",
    "scans",
    "total_intermediate_tuples",
    "max_intermediate_cardinality",
    "max_intermediate_arity",
    "peak_live_tuples",
)

COMPILED_ENGINES = (CompiledEngine, VectorizedEngine)


def assert_engines_agree(plan, database, cache_size: int = 0) -> None:
    expected, istats = Engine(
        database, plan_cache_size=cache_size
    ).execute_with_stats(plan)
    for engine_cls in COMPILED_ENGINES:
        got, cstats = engine_cls(
            database, plan_cache_size=cache_size
        ).execute_with_stats(plan)
        assert got == expected, engine_cls.__name__
        assert got.columns == expected.columns, engine_cls.__name__
        for counter in LOGICAL:
            assert getattr(cstats, counter) == getattr(istats, counter), (
                engine_cls.__name__,
                counter,
            )
        assert cstats.arity_trace == istats.arity_trace, engine_cls.__name__
        assert cstats.rows_built <= istats.rows_built, engine_cls.__name__


@given(acyclic_instances())
@settings(max_examples=25, deadline=None)
def test_all_six_methods_agree_on_acyclic_queries(pair):
    query, database = pair
    for method in METHODS:
        plan = plan_query(query, method, rng=random.Random(3))
        for cache_size in (0, 128):
            assert_engines_agree(plan, database, cache_size)


@given(random_plans())
@settings(max_examples=60, deadline=None)
def test_bushy_plans_agree(plan):
    assert_engines_agree(plan, edge_database())


@given(random_setups())
@settings(max_examples=40, deadline=None)
def test_random_databases_agree(setup):
    query, database = setup
    for method in METHODS:
        if method == "yannakakis" and not is_acyclic(query):
            continue  # rejects cyclic queries by design
        plan = plan_query(query, method, rng=random.Random(0))
        assert_engines_agree(plan, database)
