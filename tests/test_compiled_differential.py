"""Differential property suite: compiled vs interpreted execution.

The compiled backend's acceptance contract is that it is *observably
identical* to the interpreted engine on every plan either can run — same
answer relation, same logical work counters (so the paper's plan-cost
figures are engine-independent) — while being allowed to materialize
fewer physical rows (``rows_built``), which is the whole point of
fusion.  This module hammers that contract from three directions:

- random **acyclic queries** (mediator chains/stars/snowflakes) planned
  by all six planning methods, under both cache modes;
- random **bushy plans** over the edge relation — shapes no planner
  emits (nested join operands, stacked projections, cross products);
- random **databases** (varying arities, cardinalities, skew, constants
  via repeated variables) with random queries over them.

Deep-plan (2000-atom) coverage lives in ``tests/test_deep_plans.py``.
"""

import random

from hypothesis import given, settings

from repro.core import is_acyclic
from repro.core.planner import METHODS, plan_query
from repro.relalg.compiled import CompiledEngine
from repro.relalg.database import edge_database
from repro.relalg.engine import Engine

from tests.core.test_yannakakis_property import acyclic_instances
from tests.test_random_databases import random_setups
from tests.test_random_plans import random_plans

LOGICAL = (
    "joins",
    "semijoins",
    "projections",
    "scans",
    "total_intermediate_tuples",
    "max_intermediate_cardinality",
    "max_intermediate_arity",
    "peak_live_tuples",
)


def assert_engines_agree(plan, database, cache_size: int = 0) -> None:
    expected, istats = Engine(
        database, plan_cache_size=cache_size
    ).execute_with_stats(plan)
    got, cstats = CompiledEngine(
        database, plan_cache_size=cache_size
    ).execute_with_stats(plan)
    assert got == expected
    for counter in LOGICAL:
        assert getattr(cstats, counter) == getattr(istats, counter), counter
    assert cstats.arity_trace == istats.arity_trace
    assert cstats.rows_built <= istats.rows_built


@given(acyclic_instances())
@settings(max_examples=25, deadline=None)
def test_all_six_methods_agree_on_acyclic_queries(pair):
    query, database = pair
    for method in METHODS:
        plan = plan_query(query, method, rng=random.Random(3))
        for cache_size in (0, 128):
            assert_engines_agree(plan, database, cache_size)


@given(random_plans())
@settings(max_examples=60, deadline=None)
def test_bushy_plans_agree(plan):
    assert_engines_agree(plan, edge_database())


@given(random_setups())
@settings(max_examples=40, deadline=None)
def test_random_databases_agree(setup):
    query, database = setup
    for method in METHODS:
        if method == "yannakakis" and not is_acyclic(query):
            continue  # rejects cyclic queries by design
        plan = plan_query(query, method, rng=random.Random(0))
        assert_engines_agree(plan, database)
