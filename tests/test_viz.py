"""DOT export: well-formed output mentioning every element."""

import networkx as nx
import pytest

from repro.core.planner import plan_query
from repro.core.join_graph import join_graph
from repro.core.tree_decomposition import from_elimination_order
from repro.viz import (
    decomposition_to_dot,
    graph_to_dot,
    join_graph_to_dot,
    plan_to_dot,
)
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import pentagon


@pytest.fixture
def query():
    return coloring_query(pentagon())


class TestPlanDot:
    def test_mentions_every_scan(self, query):
        plan = plan_query(query, "bucket")
        dot = plan_to_dot(plan)
        assert dot.startswith("digraph")
        assert dot.count("Scan edge") == 5
        assert dot.rstrip().endswith("}")

    def test_edges_match_tree_structure(self, query):
        plan = plan_query(query, "straightforward")
        dot = plan_to_dot(plan)
        # 5 scans + 4 joins + 1 project = 10 nodes -> 9 edges.
        assert dot.count("->") == 9

    def test_zero_column_projection_rendered(self):
        from repro.plans import Project, Scan

        dot = plan_to_dot(Project(Scan("edge", ("a", "b")), ()))
        assert "∅" in dot

    def test_title_quoted_and_escaped(self, query):
        plan = plan_query(query, "bucket")
        dot = plan_to_dot(plan, title='my "special" plan')
        assert '\\"special\\"' in dot


class TestJoinGraphDot:
    def test_free_variables_doubled(self, query):
        dot = join_graph_to_dot(query)
        assert "doublecircle" in dot  # v1 is free
        assert dot.count(" -- ") == 5  # pentagon edges

    def test_all_variables_present(self, query):
        dot = join_graph_to_dot(query)
        for i in range(1, 6):
            assert f'"v{i}"' in dot


class TestDecompositionDot:
    def test_bags_rendered(self, query):
        graph = join_graph(query)
        td = from_elimination_order(graph, sorted(graph.nodes))
        dot = decomposition_to_dot(td)
        assert dot.count("label=") == len(td.bags)
        assert dot.count(" -- ") == len(td.edges)

    def test_bag_contents_visible(self, query):
        graph = join_graph(query)
        td = from_elimination_order(graph, sorted(graph.nodes))
        dot = decomposition_to_dot(td)
        assert "{" in dot and "}" in dot


class TestGraphDot:
    def test_plain_graph(self):
        graph = nx.path_graph(4)
        dot = graph_to_dot(graph, title="p4")
        assert dot.count(" -- ") == 3
        assert '"p4"' in dot
