"""Mediator workload generator: shapes, validation, and executability."""

import random

import pytest

from repro.core.planner import plan_query
from repro.errors import WorkloadError
from repro.relalg.engine import evaluate
from repro.workloads.mediator import (
    MEDIATOR_SHAPES,
    MediatorConfig,
    chain_query,
    snowflake_query,
    star_query,
)


class TestConfig:
    def test_defaults_valid(self):
        MediatorConfig()

    def test_arity_floor(self):
        with pytest.raises(WorkloadError):
            MediatorConfig(min_arity=1)

    def test_bounds_ordering(self):
        with pytest.raises(WorkloadError):
            MediatorConfig(min_rows=10, max_rows=5)

    def test_domain_floor(self):
        with pytest.raises(WorkloadError):
            MediatorConfig(domain_size=1)


class TestChain:
    def test_shape(self):
        query, database = chain_query(6, random.Random(0))
        assert len(query.atoms) == 6
        assert len(database) == 6
        assert query.free_variables == ("j0", "j6")

    def test_consecutive_atoms_share_a_variable(self):
        query, _ = chain_query(5, random.Random(1))
        for left, right in zip(query.atoms, query.atoms[1:]):
            assert left.variable_set & right.variable_set

    def test_varying_arities(self):
        _, database = chain_query(
            12, random.Random(3), MediatorConfig(min_arity=2, max_arity=4)
        )
        arities = {database[name].arity for name in database.names()}
        assert len(arities) > 1

    def test_single_endpoint(self):
        query, _ = chain_query(3, random.Random(0), free_endpoints=False)
        assert query.free_variables == ("j0",)

    def test_zero_hops_rejected(self):
        with pytest.raises(WorkloadError):
            chain_query(0, random.Random(0))

    def test_all_methods_agree(self):
        query, database = chain_query(7, random.Random(4))
        reference, _ = evaluate(plan_query(query, "straightforward"), database)
        for method in ("early", "reordering", "bucket"):
            result, _ = evaluate(
                plan_query(query, method, rng=random.Random(0)), database
            )
            assert result == reference, method


class TestStar:
    def test_shape(self):
        query, database = star_query(5, random.Random(0))
        assert len(query.atoms) == 6  # hub + satellites
        assert "hub" in database

    def test_satellites_anchor_to_hub(self):
        query, _ = star_query(4, random.Random(2))
        hub_vars = query.atoms[0].variable_set
        for atom in query.atoms[1:]:
            assert atom.variable_set & hub_vars

    def test_methods_agree(self):
        query, database = star_query(6, random.Random(5))
        reference, _ = evaluate(plan_query(query, "straightforward"), database)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert result == reference

    def test_zero_satellites_rejected(self):
        with pytest.raises(WorkloadError):
            star_query(0, random.Random(0))


class TestSnowflake:
    def test_shape(self):
        query, database = snowflake_query(3, 2, random.Random(0))
        assert len(query.atoms) == 1 + 3 * 2
        assert len(database) == 1 + 6

    def test_methods_agree(self):
        query, database = snowflake_query(2, 3, random.Random(7))
        reference, _ = evaluate(plan_query(query, "straightforward"), database)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert result == reference

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            snowflake_query(0, 1, random.Random(0))
        with pytest.raises(WorkloadError):
            snowflake_query(1, 0, random.Random(0))


def test_registry():
    assert set(MEDIATOR_SHAPES) == {"chain", "star"}


def test_bucket_dominates_on_long_chains():
    """The mediator motivation in one assertion: on a 14-hop chain the
    structural method moves far fewer tuples than the listed order."""
    query, database = chain_query(
        14, random.Random(11), MediatorConfig(domain_size=6)
    )
    _, straight = evaluate(plan_query(query, "straightforward"), database)
    _, bucket = evaluate(plan_query(query, "bucket"), database)
    assert bucket.total_intermediate_tuples < straight.total_intermediate_tuples
