"""Graph families: exact shapes, counts, and generator contracts."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.graphs import (
    STRUCTURED_FAMILIES,
    Graph,
    augmented_circular_ladder,
    augmented_ladder,
    augmented_path,
    complete_graph,
    cycle,
    grid,
    ladder,
    path,
    pentagon,
    random_graph,
    random_graph_with_density,
    star,
)


class TestGraphContainer:
    def test_density(self):
        graph = Graph(4, ((0, 1), (1, 2)))
        assert graph.density == 0.5
        assert graph.edge_count == 2

    def test_degree_and_neighbors(self):
        graph = Graph(4, ((0, 1), (1, 2), (1, 3)))
        assert graph.degree(1) == 3
        assert graph.neighbors(1) == {0, 2, 3}

    def test_self_loop_rejected(self):
        with pytest.raises(WorkloadError, match="self-loop"):
            Graph(2, ((1, 1),))

    def test_duplicate_edge_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Graph(3, ((0, 1), (1, 0)))

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError, match="out of range"):
            Graph(2, ((0, 5),))

    def test_negative_vertices_rejected(self):
        with pytest.raises(WorkloadError):
            Graph(-1)

    def test_empty_graph_density(self):
        assert Graph(0).density == 0.0


class TestRandomGraph:
    def test_exact_edge_count(self):
        graph = random_graph(10, 15, random.Random(0))
        assert graph.edge_count == 15
        assert graph.vertices == 10

    def test_too_many_edges_rejected(self):
        with pytest.raises(WorkloadError, match="do not fit"):
            random_graph(4, 7, random.Random(0))

    def test_tiny_graph_no_edges_ok(self):
        assert random_graph(1, 0, random.Random(0)).edge_count == 0

    def test_tiny_graph_with_edges_rejected(self):
        with pytest.raises(WorkloadError):
            random_graph(1, 1, random.Random(0))

    def test_deterministic_per_seed(self):
        a = random_graph(8, 10, random.Random(5))
        b = random_graph(8, 10, random.Random(5))
        assert a == b

    def test_density_constructor(self):
        graph = random_graph_with_density(10, 1.5, random.Random(0))
        assert graph.edge_count == 15

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=1000))
    def test_simple_graph_invariants(self, order, seed):
        rng = random.Random(seed)
        max_edges = order * (order - 1) // 2
        edges = rng.randint(0, max_edges)
        graph = random_graph(order, edges, rng)
        # Construction re-validates simplicity; reaching here is the test.
        assert graph.edge_count == edges


class TestStructuredFamilies:
    def test_augmented_path_counts(self):
        # Path of length n: n+1 path vertices, each with a dangling edge.
        graph = augmented_path(4)
        assert graph.vertices == 10
        assert graph.edge_count == 4 + 5

    def test_augmented_path_danglers_have_degree_one(self):
        graph = augmented_path(3)
        for dangler in range(4, 8):
            assert graph.degree(dangler) == 1

    def test_ladder_counts(self):
        graph = ladder(5)
        assert graph.vertices == 10
        assert graph.edge_count == 2 * 4 + 5  # rails + rungs

    def test_ladder_degrees(self):
        graph = ladder(4)
        degrees = sorted(graph.degree(v) for v in range(graph.vertices))
        assert degrees == [2, 2, 2, 2, 3, 3, 3, 3]

    def test_augmented_ladder_counts(self):
        graph = augmented_ladder(4)
        base = ladder(4)
        assert graph.vertices == 2 * base.vertices
        assert graph.edge_count == base.edge_count + base.vertices

    def test_augmented_circular_ladder_counts(self):
        graph = augmented_circular_ladder(4)
        assert graph.edge_count == ladder(4).edge_count + 2 + 8

    def test_circular_ladder_rails_closed(self):
        graph = augmented_circular_ladder(4)
        assert 0 in graph.neighbors(3)  # left rail closed
        assert 4 in graph.neighbors(7)  # right rail closed

    def test_minimum_sizes_enforced(self):
        with pytest.raises(WorkloadError):
            augmented_path(0)
        with pytest.raises(WorkloadError):
            ladder(0)
        with pytest.raises(WorkloadError):
            augmented_circular_ladder(2)

    def test_registry(self):
        assert set(STRUCTURED_FAMILIES) == {
            "augmented_path",
            "ladder",
            "augmented_ladder",
            "augmented_circular_ladder",
        }


class TestClassicFamilies:
    def test_cycle(self):
        graph = cycle(5)
        assert graph.edge_count == 5
        assert all(graph.degree(v) == 2 for v in range(5))

    def test_cycle_minimum(self):
        with pytest.raises(WorkloadError):
            cycle(2)

    def test_path(self):
        graph = path(4)
        assert graph.vertices == 5
        assert graph.edge_count == 4

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.edge_count == 10

    def test_grid(self):
        graph = grid(3, 4)
        assert graph.vertices == 12
        assert graph.edge_count == 3 * 3 + 2 * 4

    def test_star(self):
        graph = star(6)
        assert graph.degree(0) == 6

    def test_pentagon_is_paper_listing(self):
        graph = pentagon()
        assert graph.vertices == 5
        assert graph.edges == ((0, 1), (0, 4), (3, 4), (2, 3), (1, 2))
