"""Generic CSP encoding and its consistency with the specialized encoders."""

import pytest

from repro.core.planner import plan_query
from repro.errors import WorkloadError
from repro.relalg.engine import evaluate
from repro.workloads.csp import (
    Constraint,
    CspInstance,
    all_different_constraint,
    csp_to_query,
    solve_brute_force,
)


@pytest.fixture
def coloring_csp():
    """3-coloring of a triangle expressed as a raw CSP."""
    domain = (1, 2, 3)
    neq = tuple((a, b) for a in domain for b in domain if a != b)
    return CspInstance(
        domains={"x": domain, "y": domain, "z": domain},
        constraints=(
            Constraint(("x", "y"), neq),
            Constraint(("y", "z"), neq),
            Constraint(("x", "z"), neq),
        ),
    )


class TestValidation:
    def test_empty_scope_rejected(self):
        with pytest.raises(WorkloadError):
            Constraint((), ())

    def test_repeated_scope_variable_rejected(self):
        with pytest.raises(WorkloadError):
            Constraint(("x", "x"), ((1, 1),))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            Constraint(("x", "y"), ((1,),))

    def test_unknown_variable_rejected(self):
        with pytest.raises(WorkloadError, match="unknown variable"):
            CspInstance(
                domains={"x": (1,)},
                constraints=(Constraint(("x", "ghost"), ((1, 1),)),),
            )

    def test_no_constraints_rejected(self):
        with pytest.raises(WorkloadError):
            CspInstance(domains={"x": (1,)}, constraints=())


class TestEncoding:
    def test_triangle_satisfiable(self, coloring_csp):
        query, database = csp_to_query(coloring_csp)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert not result.is_empty()
        assert solve_brute_force(coloring_csp) is not None

    def test_identical_constraints_share_relation(self, coloring_csp):
        _, database = csp_to_query(coloring_csp)
        assert len(database) == 1

    def test_free_variables_return_assignments(self, coloring_csp):
        query, database = csp_to_query(coloring_csp, free_variables=("x", "y", "z"))
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert result.cardinality == 6  # 3! proper triangle colorings

    def test_unsatisfiable_csp(self):
        csp = CspInstance(
            domains={"x": (1, 2), "y": (1, 2)},
            constraints=(
                Constraint(("x", "y"), ((1, 2),)),
                Constraint(("x", "y"), ((2, 1),)),
            ),
        )
        query, database = csp_to_query(csp)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert result.is_empty()
        assert solve_brute_force(csp) is None

    def test_brute_force_returns_valid_assignment(self, coloring_csp):
        assignment = solve_brute_force(coloring_csp)
        assert assignment is not None
        assert assignment["x"] != assignment["y"]
        assert assignment["y"] != assignment["z"]
        assert assignment["x"] != assignment["z"]


class TestAllDifferent:
    def test_tabulation(self):
        constraint = all_different_constraint(("a", "b"), (1, 2))
        assert set(constraint.allowed) == {(1, 2), (2, 1)}

    def test_unsatisfiable_when_domain_too_small(self):
        constraint = all_different_constraint(("a", "b", "c"), (1, 2))
        assert constraint.allowed == ()
