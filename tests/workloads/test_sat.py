"""k-SAT encoding: clause relations, generator contracts, oracle agreement."""

import random
from itertools import product

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.planner import plan_query
from repro.errors import WorkloadError
from repro.relalg.engine import evaluate
from repro.workloads.sat import (
    SatFormula,
    clause_relation,
    clause_relation_name,
    is_satisfiable_brute_force,
    random_ksat,
    sat_instance,
    sat_variable_name,
)


class TestFormula:
    def test_density(self):
        formula = SatFormula(4, (((0, True), (1, False)),))
        assert formula.density == 0.25
        assert formula.clause_count == 1

    def test_repeated_variable_in_clause_rejected(self):
        with pytest.raises(WorkloadError, match="repeats"):
            SatFormula(3, (((0, True), (0, False)),))

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(WorkloadError, match="out of range"):
            SatFormula(2, (((5, True),),))


class TestGenerator:
    def test_exact_counts(self):
        formula = random_ksat(8, 20, random.Random(0))
        assert formula.variables == 8
        assert formula.clause_count == 20
        assert all(len(clause) == 3 for clause in formula.clauses)

    def test_custom_width(self):
        formula = random_ksat(6, 10, random.Random(0), width=2)
        assert all(len(clause) == 2 for clause in formula.clauses)

    def test_width_exceeding_variables_rejected(self):
        with pytest.raises(WorkloadError):
            random_ksat(2, 1, random.Random(0), width=3)

    def test_too_many_clauses_rejected(self):
        with pytest.raises(WorkloadError, match="distinct clauses"):
            random_ksat(3, 9, random.Random(0), width=3)

    def test_no_duplicate_clauses(self):
        formula = random_ksat(4, 20, random.Random(2), width=2)
        keys = [frozenset(clause) for clause in formula.clauses]
        assert len(set(keys)) == len(keys)

    def test_deterministic(self):
        assert random_ksat(6, 10, random.Random(9)) == random_ksat(
            6, 10, random.Random(9)
        )


class TestClauseRelations:
    def test_relation_has_seven_tuples_for_3sat(self):
        clause = ((0, True), (1, True), (2, True))
        assert clause_relation(clause).cardinality == 7

    def test_falsifying_assignment_excluded(self):
        clause = ((0, True), (1, False))
        relation = clause_relation(clause)
        assert (0, 1) not in relation  # x1=0, x2=1 falsifies (x1 or not x2)
        assert relation.cardinality == 3

    def test_name_reflects_signs(self):
        clause = ((0, True), (1, False), (2, True))
        assert clause_relation_name(clause) == "cl_pnp"

    def test_same_pattern_shares_relation(self):
        formula = SatFormula(
            4,
            (
                ((0, True), (1, True)),
                ((2, True), (3, True)),
            ),
        )
        _, database = sat_instance(formula)
        assert database.names() == ["cl_pp"]

    def test_variable_naming(self):
        assert sat_variable_name(0) == "x1"


class TestEncoding:
    def test_empty_formula_rejected(self):
        with pytest.raises(WorkloadError):
            sat_instance(SatFormula(3, ()))

    def test_boolean_emulation_selects_first_var(self):
        formula = SatFormula(3, (((1, True), (2, False)),))
        query, _ = sat_instance(formula)
        assert query.free_variables == ("x2",)

    def test_free_fraction(self):
        formula = random_ksat(10, 12, random.Random(0))
        query, _ = sat_instance(formula, free_fraction=0.2, rng=random.Random(1))
        assert len(query.free_variables) == 2

    def test_invalid_fraction(self):
        formula = random_ksat(5, 5, random.Random(0))
        with pytest.raises(WorkloadError):
            sat_instance(formula, free_fraction=1.5)

    def test_tautology_always_sat(self):
        # x1 or not x1 is not expressible (no repeated vars); use an
        # easily satisfiable single clause instead.
        formula = SatFormula(2, (((0, True), (1, True)),))
        query, database = sat_instance(formula)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert not result.is_empty()

    def test_contradiction_unsat(self):
        # (x1) and (not x1) via two width-1 clauses.
        formula = SatFormula(1, (((0, True),), ((0, False),)))
        query, database = sat_instance(formula)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert result.is_empty()

    def test_free_variables_return_models(self):
        # (x1 or x2): free both variables; expect the 3 satisfying rows.
        formula = SatFormula(2, (((0, True), (1, True)),))
        query, database = sat_instance(formula, free_fraction=1.0)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert result.cardinality == 3

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=500),
        st.sampled_from([2, 3]),
    )
    def test_nonemptiness_is_satisfiability(self, variables, clauses, seed, width):
        if width > variables:
            return
        from math import comb

        clauses = min(clauses, comb(variables, width) * (2**width))
        formula = random_ksat(variables, clauses, random.Random(seed), width=width)
        query, database = sat_instance(formula)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        assert (not result.is_empty()) == is_satisfiable_brute_force(formula)

    def test_model_rows_are_exactly_satisfying_assignments(self):
        formula = random_ksat(4, 5, random.Random(7))
        query, database = sat_instance(formula, free_fraction=1.0)
        result, _ = evaluate(plan_query(query, "bucket"), database)
        # Enumerate ground truth.
        occurring = sorted({i for c in formula.clauses for i, _ in c})
        expected = set()
        for assignment in product((0, 1), repeat=formula.variables):
            if all(
                any(assignment[i] == (1 if pos else 0) for i, pos in clause)
                for clause in formula.clauses
            ):
                expected.add(tuple(assignment[i] for i in occurring))
        got = result.reorder(
            tuple(sat_variable_name(i) for i in occurring)
        ).rows
        assert got == expected
