"""3-COLOR encoding: query shape, database, and oracle agreement."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.planner import plan_query
from repro.errors import WorkloadError
from repro.relalg.engine import evaluate
from repro.workloads.coloring import (
    coloring_instance,
    coloring_query,
    count_colorings_brute_force,
    is_colorable_brute_force,
    sample_free_vertices,
    variable_name,
)
from repro.workloads.graphs import (
    Graph,
    complete_graph,
    cycle,
    pentagon,
    random_graph,
)


class TestQueryShape:
    def test_one_atom_per_edge(self):
        query = coloring_query(pentagon())
        assert len(query.atoms) == 5
        assert all(atom.relation == "edge" for atom in query.atoms)

    def test_variable_naming_one_indexed(self):
        assert variable_name(0) == "v1"
        query = coloring_query(Graph(2, ((0, 1),)))
        assert query.atoms[0].variables == ("v1", "v2")

    def test_boolean_emulation_selects_first_vertex(self):
        query = coloring_query(pentagon())
        assert query.free_variables == ("v1",)

    def test_true_boolean(self):
        query = coloring_query(pentagon(), emulate_boolean=False)
        assert query.free_variables == ()

    def test_explicit_free_vertices(self):
        query = coloring_query(pentagon(), free_vertices=(2, 4))
        assert query.free_variables == ("v3", "v5")

    def test_edgeless_graph_rejected(self):
        with pytest.raises(WorkloadError):
            coloring_query(Graph(3))


class TestInstance:
    def test_database_holds_six_tuples(self):
        instance = coloring_instance(pentagon())
        assert instance.database["edge"].cardinality == 6

    def test_k_colors_database(self):
        instance = coloring_instance(pentagon(), colors=4)
        assert instance.database["edge"].cardinality == 12

    def test_too_few_colors_rejected(self):
        with pytest.raises(WorkloadError):
            coloring_instance(pentagon(), colors=1)

    def test_free_fraction_picks_touched_vertices(self):
        graph = random_graph(10, 8, random.Random(0))
        instance = coloring_instance(
            graph, free_fraction=0.2, rng=random.Random(1)
        )
        assert len(instance.query.free_variables) >= 1

    def test_is_boolean_flag(self):
        assert coloring_instance(pentagon()).is_boolean
        non_boolean = coloring_instance(
            pentagon(), free_fraction=0.5, rng=random.Random(0)
        )
        assert not non_boolean.is_boolean


class TestSampleFreeVertices:
    def test_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            sample_free_vertices(pentagon(), 1.5, random.Random(0))

    def test_zero_fraction_empty(self):
        assert sample_free_vertices(pentagon(), 0.0, random.Random(0)) == ()

    def test_twenty_percent_of_pentagon_is_one(self):
        free = sample_free_vertices(pentagon(), 0.2, random.Random(0))
        assert len(free) == 1

    def test_only_touched_vertices_eligible(self):
        graph = Graph(10, ((0, 1),))
        free = sample_free_vertices(graph, 1.0, random.Random(0))
        assert set(free) == {0, 1}

    def test_sorted_output(self):
        free = sample_free_vertices(pentagon(), 0.8, random.Random(3))
        assert list(free) == sorted(free)


class TestOracleAgreement:
    def test_pentagon_colorable(self):
        instance = coloring_instance(pentagon())
        result, _ = evaluate(plan_query(instance.query, "bucket"), instance.database)
        assert not result.is_empty()

    def test_k4_not_colorable(self):
        instance = coloring_instance(complete_graph(4))
        result, _ = evaluate(plan_query(instance.query, "bucket"), instance.database)
        assert result.is_empty()

    def test_odd_cycle_needs_three(self):
        # 2 colors fail on C5, 3 succeed.
        two = coloring_instance(cycle(5), colors=2)
        three = coloring_instance(cycle(5), colors=3)
        empty, _ = evaluate(plan_query(two.query, "bucket"), two.database)
        full, _ = evaluate(plan_query(three.query, "bucket"), three.database)
        assert empty.is_empty()
        assert not full.is_empty()

    def test_full_free_counts_colorings(self):
        graph = cycle(4)
        query = coloring_query(graph, free_vertices=tuple(range(4)))
        instance = coloring_instance(graph)
        result, _ = evaluate(plan_query(query, "bucket"), instance.database)
        assert result.cardinality == count_colorings_brute_force(graph)

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=500),
    )
    def test_query_nonemptiness_is_colorability(self, order, edges, seed):
        rng = random.Random(seed)
        max_edges = order * (order - 1) // 2
        graph = random_graph(order, min(edges, max_edges), rng)
        if not graph.edges:
            return
        instance = coloring_instance(graph)
        result, _ = evaluate(
            plan_query(instance.query, "bucket"), instance.database
        )
        assert (not result.is_empty()) == is_colorable_brute_force(graph)
