"""Figure builders at toy sizes: they run, and the paper's shape claims
hold on the machine-independent counters."""

import pytest

from repro.experiments.figures import (
    EXECUTION_METHODS,
    FIGURES,
    fig2_compile,
    fig3_density,
    fig4_order_low_density,
    fig6_augmented_path,
    fig7_ladder,
    fig8_augmented_ladder,
    sat_scaling,
)


def test_registry_covers_every_figure():
    assert set(FIGURES) == {
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "sat", "relsize", "mediator",
    }


class TestFollowUps:
    def test_relation_size_scaling_runs(self):
        from repro.experiments.figures import relation_size_scaling

        series = relation_size_scaling(colors=(3, 4), order=7, seeds=1)
        assert series.get("bucket", 4.0) is not None

    def test_relation_size_bucket_still_wins(self):
        from repro.experiments.figures import relation_size_scaling

        series = relation_size_scaling(colors=(4,), order=8, seeds=2)
        bucket = series.get("bucket", 4.0).median_tuples
        straight = series.get("straightforward", 4.0).median_tuples
        assert bucket < straight

    def test_mediator_chain_scaling_runs(self):
        from repro.experiments.figures import mediator_chain_scaling

        series = mediator_chain_scaling(hops=(4, 6), seeds=1)
        assert series.get("bucket", 6.0) is not None


class TestFig2:
    def test_runs_and_reports_both_methods(self):
        series = fig2_compile(densities=(1, 2, 3), seeds=2)
        assert series.methods == ["naive", "straightforward"]
        for density in (1.0, 2.0, 3.0):
            assert series.get("naive", density) is not None

    def test_naive_work_dominates(self):
        """Figure 2's claim: naive compile effort is far above
        straightforward and grows with density."""
        series = fig2_compile(densities=(1, 3), seeds=2)
        for density in (1.0, 3.0):
            naive = series.get("naive", density)
            straight = series.get("straightforward", density)
            assert naive.median_tuples > straight.median_tuples
        assert (
            series.get("naive", 3.0).median_tuples
            > series.get("naive", 1.0).median_tuples
        )


class TestFig3:
    def test_boolean_density_scaling(self):
        series = fig3_density(order=7, densities=(1.0, 2.0), seeds=2)
        assert list(series.methods) == list(EXECUTION_METHODS)
        cell = series.get("bucket", 2.0)
        assert cell is not None and not cell.timed_out

    def test_bucket_dominates_on_tuples(self):
        """Figure 3's claim: bucket elimination moves the fewest tuples at
        every density."""
        series = fig3_density(order=8, densities=(1.0, 2.0, 3.0), seeds=3)
        for density in (1.0, 2.0, 3.0):
            bucket = series.get("bucket", density).median_tuples
            for method in ("straightforward", "early"):
                assert bucket <= series.get(method, density).median_tuples

    def test_non_boolean_variant(self):
        series = fig3_density(
            order=7, densities=(2.0,), seeds=2, free_fraction=0.2
        )
        assert series.name.endswith("nonboolean")
        assert series.get("bucket", 2.0) is not None


class TestOrderScaling:
    def test_fig4_runs(self):
        series = fig4_order_low_density(orders=(7, 8), seeds=2)
        assert series.get("bucket", 8.0) is not None

    def test_bucket_beats_straightforward_at_larger_orders(self):
        series = fig4_order_low_density(orders=(8,), seeds=3)
        bucket = series.get("bucket", 8.0).median_tuples
        straight = series.get("straightforward", 8.0).median_tuples
        assert bucket < straight


class TestStructured:
    def test_fig6_early_competitive(self):
        """Figure 6's claim: on augmented paths the natural order is
        good — early projection lands within a small factor of bucket."""
        series = fig6_augmented_path(orders=(6,), seeds=1)
        early = series.get("early", 6.0).median_tuples
        straight = series.get("straightforward", 6.0).median_tuples
        assert early < straight

    def test_fig7_reordering_backfires(self):
        """Figure 7's claim: on ladders the greedy reorderer finds a
        *worse* order than the natural listing — early projection along
        the given order beats reordering."""
        series = fig7_ladder(orders=(8,), seeds=1)
        early = series.get("early", 8.0).median_tuples
        reordering = series.get("reordering", 8.0).median_tuples
        assert early < reordering

    def test_fig8_separation(self):
        """Figure 8's claim: on augmented ladders the gap between
        straightforward and bucket elimination is wide."""
        series = fig8_augmented_ladder(orders=(4,), seeds=1)
        bucket = series.get("bucket", 4.0).median_tuples
        straight = series.get("straightforward", 4.0).median_tuples
        assert bucket * 4 <= straight


class TestSat:
    def test_sat_scaling_runs(self):
        series = sat_scaling(variables=(5, 6), seeds=1)
        assert series.get("bucket", 6.0) is not None

    def test_2sat_variant(self):
        series = sat_scaling(variables=(5,), seeds=1, clause_width=2)
        assert series.name.startswith("sat2")


class TestBudget:
    def test_timeout_retires_method(self):
        # An absurdly small budget retires everything after the first size.
        series = fig3_density(
            order=7, densities=(1.0, 2.0), seeds=1, budget_seconds=0.0
        )
        for method in EXECUTION_METHODS:
            assert series.get(method, 2.0).timed_out
