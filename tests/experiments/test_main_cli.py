"""The `python -m repro.experiments` command-line interface."""

import pytest

from repro.experiments.__main__ import _kwargs_for, build_argument_parser, main


def test_parser_accepts_all_figures():
    parser = build_argument_parser()
    for name in ("fig2", "fig3", "fig9", "sat", "all"):
        assert parser.parse_args([name]).figure == name


def test_parser_rejects_unknown_figure():
    parser = build_argument_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_kwargs_routing_orders_only_for_order_figures():
    parser = build_argument_parser()
    args = parser.parse_args(["fig4", "--orders", "8", "10"])
    assert _kwargs_for("fig4", args)["orders"] == [8, 10]
    assert "orders" not in _kwargs_for("fig3", args)


def test_kwargs_routing_densities():
    parser = build_argument_parser()
    args = parser.parse_args(["fig3", "--densities", "1.0", "2.0"])
    assert _kwargs_for("fig3", args)["densities"] == [1.0, 2.0]
    assert "densities" not in _kwargs_for("fig4", args)


def test_kwargs_fig2_ignores_execution_flags():
    parser = build_argument_parser()
    args = parser.parse_args(
        ["fig2", "--budget-seconds", "1", "--free-fraction", "0.2", "--via-sql"]
    )
    kwargs = _kwargs_for("fig2", args)
    assert "budget_seconds" not in kwargs
    assert "free_fraction" not in kwargs
    assert "via_sql" not in kwargs


def test_main_runs_tiny_figure(capsys):
    exit_code = main(
        ["fig3", "--seeds", "1", "--densities", "1.0", "--summary"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "fig3_density_boolean" in out
    assert "winner per" in out


def test_main_runs_fig2(capsys):
    exit_code = main(["fig2", "--seeds", "1", "--densities", "1.0", "2.0"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "fig2_compile" in out
