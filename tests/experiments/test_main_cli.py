"""The `python -m repro.experiments` command-line interface."""

import pytest

from repro.experiments.__main__ import _kwargs_for, build_argument_parser, main


def test_parser_accepts_all_figures():
    parser = build_argument_parser()
    for name in ("fig2", "fig3", "fig9", "sat", "all"):
        assert parser.parse_args([name]).figure == name


def test_parser_rejects_unknown_figure():
    parser = build_argument_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_kwargs_routing_orders_only_for_order_figures():
    parser = build_argument_parser()
    args = parser.parse_args(["fig4", "--orders", "8", "10"])
    assert _kwargs_for("fig4", args)["orders"] == [8, 10]
    assert "orders" not in _kwargs_for("fig3", args)


def test_kwargs_routing_densities():
    parser = build_argument_parser()
    args = parser.parse_args(["fig3", "--densities", "1.0", "2.0"])
    assert _kwargs_for("fig3", args)["densities"] == [1.0, 2.0]
    assert "densities" not in _kwargs_for("fig4", args)


def test_kwargs_fig2_ignores_execution_flags():
    parser = build_argument_parser()
    args = parser.parse_args(
        ["fig2", "--budget-seconds", "1", "--free-fraction", "0.2", "--via-sql"]
    )
    kwargs = _kwargs_for("fig2", args)
    assert "budget_seconds" not in kwargs
    assert "free_fraction" not in kwargs
    assert "via_sql" not in kwargs


def test_kwargs_routing_engine_and_jobs():
    parser = build_argument_parser()
    args = parser.parse_args(
        ["fig6", "--engine", "compiled", "--jobs", "2",
         "--cell-timeout-seconds", "30"]
    )
    kwargs = _kwargs_for("fig6", args)
    assert kwargs["engine"] == "compiled"
    assert kwargs["jobs"] == 2
    assert kwargs["cell_timeout_seconds"] == 30.0
    # fig2 has no execution layer, so none of the three apply.
    assert "engine" not in _kwargs_for("fig2", args)
    assert "jobs" not in _kwargs_for("fig2", args)


def test_parser_rejects_unknown_engine():
    parser = build_argument_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig6", "--engine", "jitted"])


def test_main_json_output(capsys):
    import json

    exit_code = main(
        ["fig3", "--seeds", "1", "--densities", "1.0", "--json"]
    )
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-series/1"
    assert payload["name"] == "fig3_density_boolean"
    assert payload["cells"]


def test_main_compiled_engine_matches_interpreted(capsys):
    import json

    flags = ["fig3", "--seeds", "1", "--densities", "1.0", "--json"]
    assert main(flags) == 0
    interpreted = json.loads(capsys.readouterr().out)
    assert main(flags + ["--engine", "compiled"]) == 0
    compiled = json.loads(capsys.readouterr().out)

    def strip(payload):
        return [
            {k: v for k, v in cell.items() if k != "median_seconds"}
            for cell in payload["cells"]
        ]

    assert strip(compiled) == strip(interpreted)


def test_main_runs_tiny_figure(capsys):
    exit_code = main(
        ["fig3", "--seeds", "1", "--densities", "1.0", "--summary"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "fig3_density_boolean" in out
    assert "winner per" in out


def test_main_runs_fig2(capsys):
    exit_code = main(["fig2", "--seeds", "1", "--densities", "1.0", "2.0"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "fig2_compile" in out
