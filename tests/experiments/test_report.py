"""Report formatting."""

import pytest

from repro.experiments.report import dominance_summary, format_report, format_table
from repro.experiments.runner import CellResult, Series


@pytest.fixture
def series():
    s = Series("demo", "order", [1.0, 2.0], ["fast", "slow"])
    s.add(CellResult("fast", 1.0, 0.01, 100, 2, 3))
    s.add(CellResult("slow", 1.0, 0.5, 900, 5, 3))
    s.add(CellResult("fast", 2.0, 0.02, 200, 2, 3))
    s.add(
        CellResult(
            "slow", 2.0, float("inf"), float("inf"), None, 0, timed_out=True
        )
    )
    return s


def test_seconds_table(series):
    text = format_table(series, "seconds")
    assert "demo" in text
    assert "0.0100" in text
    assert "timeout" in text


def test_tuples_table(series):
    text = format_table(series, "tuples")
    assert "100" in text
    assert "900" in text


def test_width_table(series):
    text = format_table(series, "width")
    assert "2" in text


def test_missing_cell_rendered_as_dash():
    s = Series("sparse", "x", [1.0], ["m"])
    assert "-" in format_table(s, "seconds").splitlines()[-1]


def test_unknown_metric_rejected(series):
    with pytest.raises(ValueError):
        format_table(series, "bogus")


def test_format_report_combines_metrics(series):
    text = format_report(series)
    assert "(seconds)" in text
    assert "(tuples)" in text


def test_dominance_summary(series):
    text = dominance_summary(series)
    assert "1: fast" in text
    assert "2: fast" in text


def test_dominance_summary_all_timed_out():
    s = Series("dead", "x", [1.0], ["m"])
    s.add(CellResult("m", 1.0, float("inf"), float("inf"), None, 0, timed_out=True))
    assert "all timed out" in dominance_summary(s)
