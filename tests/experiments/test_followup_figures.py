"""The Section 7 follow-up experiments: shape assertions at toy sizes."""

import pytest

from repro.experiments.figures import (
    mediator_chain_scaling,
    relation_size_scaling,
)


class TestRelationSizeScaling:
    def test_advantage_widens_with_domain(self):
        """The headline of the follow-up: bucket elimination's lead over
        the listed order grows as the relation grows."""
        series = relation_size_scaling(colors=(3, 4), order=8, seeds=2)
        ratios = []
        for k in (3.0, 4.0):
            straight = series.get("straightforward", k)
            bucket = series.get("bucket", k)
            if straight.timed_out or bucket.timed_out:
                pytest.skip("toy sizes timed out on this machine")
            ratios.append(straight.median_tuples / max(bucket.median_tuples, 1))
        assert ratios[1] > ratios[0]

    def test_x_axis_is_color_count(self):
        series = relation_size_scaling(colors=(3,), order=7, seeds=1)
        assert series.x_values == [3.0]
        assert "colors" in series.x_label


class TestMediatorScaling:
    def test_structural_methods_outlast_listed_order(self):
        series = mediator_chain_scaling(hops=(4, 8), seeds=2)
        bucket = series.get("bucket", 8.0)
        assert bucket is not None and not bucket.timed_out

    def test_chain_work_grows_with_hops(self):
        series = mediator_chain_scaling(hops=(4, 8), seeds=2)
        small = series.get("bucket", 4.0).median_tuples
        large = series.get("bucket", 8.0).median_tuples
        assert large > small
