"""Experiment runner: both execution paths, aggregation, budgets."""

import random

import pytest

from repro.experiments.runner import (
    BudgetTracker,
    CellResult,
    MethodRun,
    Series,
    aggregate_runs,
    run_method,
)
from repro.workloads.coloring import coloring_instance
from repro.workloads.graphs import pentagon


@pytest.fixture
def instance():
    return coloring_instance(pentagon())


class TestRunMethod:
    def test_plan_path(self, instance):
        run = run_method(instance.query, instance.database, "bucket")
        assert run.method == "bucket"
        assert run.answer_cardinality == 3
        assert run.nonempty
        assert run.plan_width is not None
        assert run.total_intermediate_tuples > 0
        assert run.wall_seconds >= 0

    def test_sql_path_same_answer(self, instance):
        plan_run = run_method(instance.query, instance.database, "bucket")
        sql_run = run_method(
            instance.query, instance.database, "bucket", via_sql=True
        )
        assert sql_run.answer_cardinality == plan_run.answer_cardinality
        assert sql_run.plan_width is None  # not tracked through SQL

    @pytest.mark.parametrize(
        "method", ["straightforward", "early", "reordering", "bucket"]
    )
    def test_all_methods_via_both_paths(self, instance, method):
        rng = random.Random(0)
        a = run_method(instance.query, instance.database, method, rng=rng)
        b = run_method(
            instance.query,
            instance.database,
            method,
            rng=random.Random(0),
            via_sql=True,
        )
        assert a.answer_cardinality == b.answer_cardinality == 3


class TestAggregation:
    def _fake_run(self, seconds, tuples):
        from repro.relalg.stats import ExecutionStats

        stats = ExecutionStats()
        stats.record_output(tuples, 2)
        return MethodRun(
            method="m",
            wall_seconds=seconds,
            generation_seconds=0.0,
            answer_cardinality=1,
            nonempty=True,
            plan_width=3,
            stats=stats,
        )

    def test_median(self):
        runs = [self._fake_run(s, t) for s, t in ((1.0, 10), (5.0, 30), (2.0, 20))]
        cell = aggregate_runs("m", 4.0, runs)
        assert cell.median_seconds == 2.0
        assert cell.median_tuples == 20
        assert cell.median_width == 3
        assert cell.runs == 3

    def test_label(self):
        cell = aggregate_runs("m", 1.0, [self._fake_run(0.5, 5)])
        assert cell.label() == "0.5000s"


class TestSeries:
    def test_add_get_curve(self):
        series = Series("s", "x", [1.0, 2.0], ["m"])
        cell = CellResult("m", 1.0, 0.1, 10, 2, 1)
        series.add(cell)
        assert series.get("m", 1.0) is cell
        assert series.get("m", 2.0) is None
        assert series.curve("m") == [(1.0, cell)]


class TestBudgetTracker:
    def test_retires_after_budget_exceeded(self):
        tracker = BudgetTracker(budget_seconds=1.0)
        assert tracker.active("slow")
        tracker.observe(CellResult("slow", 1.0, 2.0, 10, 2, 1))
        assert not tracker.active("slow")

    def test_fast_method_stays_active(self):
        tracker = BudgetTracker(budget_seconds=1.0)
        tracker.observe(CellResult("fast", 1.0, 0.2, 10, 2, 1))
        assert tracker.active("fast")

    def test_timeout_cell(self):
        tracker = BudgetTracker(1.0)
        cell = tracker.timeout_cell("slow", 3.0)
        assert cell.timed_out
        assert cell.label() == "timeout"
