"""The parallel experiment driver (``--jobs N``).

The contract is bit-for-bit equivalence with the serial driver apart
from wall-clock: same cells run, same per-cell seeds, same collection
order (method-major, then seed), same JSON schema.  That holds because
``run_cell`` builds its planner RNG from the seed *inside* the worker
and the parent collects futures in serial order, so budget retirement
sees the same sequence of results either way.
"""

import random

import pytest

from repro.experiments.figures import fig6_augmented_path
from repro.experiments.report import series_to_json
from repro.experiments.runner import MethodRun, run_cell
from repro.workloads.coloring import coloring_instance
from repro.workloads.graphs import augmented_path


@pytest.fixture(scope="module")
def instance():
    graph = augmented_path(4)
    inst = coloring_instance(graph, rng=random.Random(0))
    return inst.query, inst.database


def strip_timing(payload: dict) -> dict:
    """Drop wall-clock fields, keeping everything determinism covers."""
    out = dict(payload)
    out["cells"] = [
        {k: v for k, v in cell.items() if k != "median_seconds"}
        for cell in payload["cells"]
    ]
    return out


class TestRunCell:
    def test_returns_method_run(self, instance):
        query, database = instance
        run = run_cell(query, database, "bucket", seed=0)
        assert isinstance(run, MethodRun)
        assert run.method == "bucket"
        assert not run.timed_out

    def test_deterministic_in_seed(self, instance):
        query, database = instance
        first = run_cell(query, database, "reordering", seed=7)
        second = run_cell(query, database, "reordering", seed=7)
        assert first.answer_cardinality == second.answer_cardinality
        assert (
            first.stats.total_intermediate_tuples
            == second.stats.total_intermediate_tuples
        )
        assert first.plan_width == second.plan_width

    def test_refusal_returned_as_none(self, instance):
        query, database = instance
        assert (
            run_cell(query, database, "straightforward", seed=0, cap_tuples=1)
            is None
        )

    def test_engine_choice_preserves_logical_stats(self, instance):
        query, database = instance
        interpreted = run_cell(query, database, "bucket", seed=0)
        compiled = run_cell(
            query, database, "bucket", seed=0, engine="compiled"
        )
        assert compiled.answer_cardinality == interpreted.answer_cardinality
        assert (
            compiled.stats.total_intermediate_tuples
            == interpreted.stats.total_intermediate_tuples
        )
        assert compiled.stats.arity_trace == interpreted.stats.arity_trace


class TestParallelDriver:
    # One small figure is enough: the driver logic is shared by every
    # builder through _scaling_series.
    KW = dict(orders=(4, 6), seeds=2, budget_seconds=30.0)

    def test_jobs_matches_serial_except_wall_clock(self):
        serial = series_to_json(fig6_augmented_path(**self.KW))
        parallel = series_to_json(fig6_augmented_path(jobs=2, **self.KW))
        assert strip_timing(parallel) == strip_timing(serial)

    def test_jobs_with_compiled_engine_matches_interpreted(self):
        interpreted = series_to_json(
            fig6_augmented_path(jobs=2, engine="interpreted", **self.KW)
        )
        compiled = series_to_json(
            fig6_augmented_path(jobs=2, engine="compiled", **self.KW)
        )
        assert strip_timing(compiled) == strip_timing(interpreted)
