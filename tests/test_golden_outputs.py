"""Golden-output regression tests.

The generator's SQL text, the plan pretty-printer, and the Datalog
renderer are user-facing surfaces: downstream scripts parse or diff
them.  These tests pin their exact output for fixed inputs, so any
behavioural drift (alias numbering, ON-clause ordering, indentation)
shows up as a readable diff rather than a subtle downstream breakage.
Deterministic seeds everywhere; update the constants deliberately when
the format is *meant* to change.
"""

import random

from repro.core.planner import plan_query
from repro.datalog import parse_rule, render_datalog
from repro.plans import pretty_plan
from repro.sql.generator import generate_sql
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import pentagon


GOLDEN_NAIVE = """\
SELECT DISTINCT e1.v1
FROM edge e1 (v1, v2),
edge e2 (v1, v5),
edge e3 (v4, v5),
edge e4 (v3, v4),
edge e5 (v2, v3)
WHERE e2.v1 = e1.v1 AND e3.v5 = e2.v5 AND e4.v4 = e3.v4 AND e5.v2 = e1.v2 AND e5.v3 = e4.v3;"""

GOLDEN_STRAIGHTFORWARD = """\
SELECT DISTINCT e1.v1
FROM edge e5 (v2, v3) JOIN (edge e4 (v3, v4) JOIN (edge e3 (v4, v5) JOIN (edge e2 (v1, v5) JOIN edge e1 (v1, v2) ON ( e2.v1 = e1.v1 )) ON ( e3.v5 = e2.v5 )) ON ( e4.v4 = e3.v4 )) ON ( e5.v2 = e1.v2 AND e5.v3 = e4.v3 );"""

GOLDEN_EARLY = """\
SELECT DISTINCT t2.v1
FROM edge e5 (v2, v3) JOIN (
   SELECT DISTINCT t1.v1, t1.v2, e4.v3
   FROM edge e4 (v3, v4) JOIN (
      SELECT DISTINCT e1.v1, e1.v2, e3.v4
      FROM edge e3 (v4, v5) JOIN (edge e2 (v1, v5) JOIN edge e1 (v1, v2) ON ( e2.v1 = e1.v1 )) ON ( e3.v5 = e2.v5 )) AS t1 ON ( e4.v4 = t1.v4 )) AS t2 ON ( e5.v2 = t2.v2 AND e5.v3 = t2.v3 );"""

GOLDEN_BUCKET = """\
SELECT DISTINCT e2.v1
FROM (
   SELECT DISTINCT e3.v5, t2.v1
   FROM (
      SELECT DISTINCT e1.v1, t1.v4
      FROM (
         SELECT DISTINCT e4.v4, e5.v2
         FROM edge e5 (v2, v3) JOIN edge e4 (v3, v4) ON ( e5.v3 = e4.v3 )) AS t1 JOIN edge e1 (v1, v2) ON ( t1.v2 = e1.v2 )) AS t2 JOIN edge e3 (v4, v5) ON ( t2.v4 = e3.v4 )) AS t3 JOIN edge e2 (v1, v5) ON ( t3.v1 = e2.v1 AND t3.v5 = e2.v5 );"""

GOLDEN_BUCKET_PLAN = """\
Project[v1]
  Join
    Scan edge(v1, v5)
    Project[v5, v1]
      Join
        Scan edge(v4, v5)
        Project[v1, v4]
          Join
            Scan edge(v1, v2)
            Project[v4, v2]
              Join
                Scan edge(v3, v4)
                Scan edge(v2, v3)"""


class TestGoldenSql:
    def test_naive(self):
        query = coloring_query(pentagon())
        assert generate_sql(query, "naive") == GOLDEN_NAIVE

    def test_straightforward(self):
        query = coloring_query(pentagon())
        assert generate_sql(query, "straightforward") == GOLDEN_STRAIGHTFORWARD

    def test_early(self):
        query = coloring_query(pentagon())
        assert generate_sql(query, "early") == GOLDEN_EARLY

    def test_bucket(self):
        query = coloring_query(pentagon())
        assert generate_sql(query, "bucket", rng=random.Random(0)) == GOLDEN_BUCKET

    def test_reordering_stable_for_fixed_seed(self):
        query = coloring_query(pentagon())
        first = generate_sql(query, "reordering", rng=random.Random(7))
        second = generate_sql(query, "reordering", rng=random.Random(7))
        assert first == second


class TestGoldenPlan:
    def test_bucket_plan_pretty(self):
        query = coloring_query(pentagon())
        plan = plan_query(query, "bucket", rng=random.Random(0))
        assert pretty_plan(plan) == GOLDEN_BUCKET_PLAN


class TestGoldenDatalog:
    def test_render(self):
        rule = "q(X, Z) :- edge(X, Y), edge(Y, Z), label(X, 'hub'), r(X, 3)."
        assert render_datalog(parse_rule(rule)) == rule

    def test_coloring_query_renders(self):
        query = coloring_query(pentagon())
        assert render_datalog(query) == (
            "q(V_v1) :- edge(V_v1, V_v2), edge(V_v1, V_v5), "
            "edge(V_v4, V_v5), edge(V_v3, V_v4), edge(V_v2, V_v3)."
        )
