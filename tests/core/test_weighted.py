"""Weighted widths (the Section 7 weighted-attributes extension)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import induced_width
from repro.core.weighted import (
    min_weighted_fill_order,
    weighted_induced_width,
    weighted_plan_cost,
)
from repro.errors import OrderingError
from repro.plans import Join, Project, Scan


def path(n):
    return nx.path_graph([f"v{i}" for i in range(n)])


class TestWeightedInducedWidth:
    def test_uniform_weights_recover_arity(self):
        graph = nx.cycle_graph([f"v{i}" for i in range(6)])
        order = sorted(graph.nodes)
        uniform = {node: 1.0 for node in graph.nodes}
        assert weighted_induced_width(graph, order, uniform) == (
            induced_width(graph, order) + 1
        )

    def test_heavy_attribute_dominates(self):
        graph = path(4)
        order = sorted(graph.nodes)
        weights = {"v1": 100.0}
        assert weighted_induced_width(graph, order, weights) >= 100.0

    def test_missing_weights_default_to_one(self):
        graph = path(3)
        assert weighted_induced_width(graph, sorted(graph.nodes), {}) == 2.0

    def test_non_positive_weight_rejected(self):
        graph = path(3)
        with pytest.raises(OrderingError, match="positive"):
            weighted_induced_width(graph, sorted(graph.nodes), {"v0": 0.0})

    def test_non_permutation_rejected(self):
        graph = path(3)
        with pytest.raises(OrderingError):
            weighted_induced_width(graph, ["v0"], {})


class TestMinWeightedFillOrder:
    def test_is_permutation_with_pin(self):
        graph = nx.cycle_graph([f"v{i}" for i in range(5)])
        order = min_weighted_fill_order(graph, {}, initial=("v3",))
        assert order[0] == "v3"
        assert sorted(order) == sorted(graph.nodes)

    def test_avoids_heavy_fronts(self):
        """On a star with a heavy hub, eliminating leaves first keeps the
        heavy node out of most fronts — and the weighted heuristic must
        find that order."""
        graph = nx.star_graph(5)
        weights = {0: 50.0}  # the hub
        order = min_weighted_fill_order(graph, weights)
        width = weighted_induced_width(graph, order, weights)
        # Leaves eliminate against the hub only: front weight 51.
        assert width == 51.0

    def test_unknown_initial_rejected(self):
        with pytest.raises(OrderingError):
            min_weighted_fill_order(path(3), {}, initial=("ghost",))

    @given(st.integers(min_value=1, max_value=7))
    def test_uniform_weights_behave_like_structural_heuristic(self, n):
        graph = path(n)
        order = min_weighted_fill_order(graph, {})
        assert weighted_induced_width(graph, order, {}) <= 2.0


class TestWeightedPlanCost:
    def test_plan_cost_counts_schema_weights(self):
        plan = Project(
            Join(Scan("edge", ("a", "b")), Scan("edge", ("b", "c"))), ("a",)
        )
        cost = weighted_plan_cost(plan, {"a": 1.0, "b": 2.0, "c": 4.0})
        assert cost == 7.0  # the 3-column join output

    def test_uniform_equals_plan_width(self):
        from repro.plans import plan_width

        plan = Join(Scan("edge", ("a", "b")), Scan("edge", ("b", "c")))
        assert weighted_plan_cost(plan, {}) == plan_width(plan)

    def test_bucket_with_weighted_order_reduces_cost(self):
        """End-to-end: feeding a weight-aware numbering into bucket
        elimination yields a plan no costlier (under the weights) than the
        default MCS numbering, on a workload with one heavy attribute."""
        from repro.core.buckets import bucket_elimination_plan, mcs_bucket_order
        from repro.core.join_graph import join_graph
        from repro.workloads.coloring import coloring_query
        from repro.workloads.graphs import star

        query = coloring_query(star(6))  # hub variable v1
        weights = {"v1": 40.0}
        graph = join_graph(query)
        weighted_order = min_weighted_fill_order(
            graph, weights, initial=tuple(query.free_variables)
        )
        default = bucket_elimination_plan(query)
        weighted = bucket_elimination_plan(query, order=weighted_order)
        assert weighted_plan_cost(weighted.plan, weights) <= weighted_plan_cost(
            default.plan, weights
        ) + 40.0  # never meaningfully worse
