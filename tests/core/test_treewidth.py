"""Exact treewidth and bounds on graphs with known treewidth."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import induced_width
from repro.core.treewidth import (
    EXACT_NODE_LIMIT,
    treewidth_exact,
    treewidth_exact_order,
    treewidth_lower_bound,
    treewidth_upper_bound,
)


KNOWN_TREEWIDTHS = [
    (nx.path_graph(6), 1),
    (nx.star_graph(5), 1),
    (nx.balanced_tree(2, 3), 1),
    (nx.cycle_graph(5), 2),
    (nx.cycle_graph(9), 2),
    (nx.complete_graph(4), 3),
    (nx.complete_graph(6), 5),
    (nx.grid_2d_graph(3, 3), 3),
    (nx.grid_2d_graph(2, 5), 2),
    (nx.complete_bipartite_graph(2, 3), 2),
    (nx.petersen_graph(), 4),
]


@pytest.mark.parametrize(
    "graph,expected", KNOWN_TREEWIDTHS, ids=lambda value: str(value)
)
def test_exact_on_known_graphs(graph, expected):
    if isinstance(expected, int):
        assert treewidth_exact(graph) == expected


def test_exact_order_witnesses_width():
    graph = nx.grid_2d_graph(3, 3)
    width, order = treewidth_exact_order(graph)
    assert induced_width(graph, order) == width == 3


def test_exact_empty_graph():
    assert treewidth_exact(nx.Graph()) == 0


def test_exact_single_node():
    graph = nx.Graph()
    graph.add_node("x")
    width, order = treewidth_exact_order(graph)
    assert width == 0
    assert order == ["x"]


def test_exact_disconnected():
    graph = nx.disjoint_union(nx.cycle_graph(4), nx.path_graph(3))
    assert treewidth_exact(graph) == 2


def test_node_limit_enforced():
    big = nx.path_graph(EXACT_NODE_LIMIT + 1)
    with pytest.raises(ValueError, match="exact treewidth limited"):
        treewidth_exact(big)


class TestPinnedFirst:
    def test_pinned_clique_keeps_treewidth(self):
        # The pinned set is a clique => optimal width is unaffected.
        graph = nx.cycle_graph(6)
        graph.add_edge(0, 1)  # already there; {0, 1} is a clique
        width, order = treewidth_exact_order(graph, pinned_first={0, 1})
        assert set(order[:2]) == {0, 1}
        assert width == 2
        assert induced_width(graph, order) == width

    def test_pinned_nodes_not_in_graph_rejected(self):
        with pytest.raises(ValueError):
            treewidth_exact_order(nx.path_graph(3), pinned_first={99})

    def test_pinned_non_clique_can_cost_width(self):
        # Pinning both endpoints of a path forces them into late bags.
        graph = nx.path_graph(5)
        width, order = treewidth_exact_order(graph, pinned_first={0, 4})
        assert set(order[:2]) == {0, 4}
        assert width >= 1
        assert induced_width(graph, order) == width


class TestBounds:
    @pytest.mark.parametrize("graph,expected", KNOWN_TREEWIDTHS[:8])
    def test_bounds_sandwich_exact(self, graph, expected):
        lower = treewidth_lower_bound(graph)
        upper = treewidth_upper_bound(graph)
        assert lower <= expected <= upper

    def test_lower_bound_empty(self):
        assert treewidth_lower_bound(nx.Graph()) == 0

    def test_upper_bound_empty(self):
        assert treewidth_upper_bound(nx.Graph()) == 0

    def test_upper_bound_tight_on_trees(self):
        assert treewidth_upper_bound(nx.balanced_tree(3, 2)) == 1

    def test_lower_bound_clique(self):
        assert treewidth_lower_bound(nx.complete_graph(5)) == 4


@st.composite
def random_small_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), max_size=14, unique=True)) if pairs else []
    graph.add_edges_from(edges)
    return graph


@given(random_small_graphs())
def test_exact_between_bounds(graph):
    exact = treewidth_exact(graph)
    assert treewidth_lower_bound(graph) <= exact <= treewidth_upper_bound(graph)


@given(random_small_graphs())
def test_exact_order_always_witnesses(graph):
    width, order = treewidth_exact_order(graph)
    assert sorted(order) == sorted(graph.nodes)
    assert induced_width(graph, order) == width
