"""Theorem 2: the induced width of a project-join query is its treewidth.

The induced width of the bucket-elimination *process* under a numbering is
the largest arity it computes; minimized over numberings it equals the
treewidth of the join graph.  We check both directions on random small
queries: an exact-treewidth numbering achieves induced width == tw, and no
numbering does better.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buckets import bucket_elimination_plan, mcs_bucket_order
from repro.core.join_graph import join_graph
from repro.core.ordering import induced_width
from repro.core.query import ConjunctiveQuery
from repro.core.treewidth import treewidth_exact, treewidth_exact_order
from repro.relalg.database import edge_database
from repro.relalg.engine import evaluate
from repro.workloads.coloring import coloring_query, is_colorable_brute_force
from repro.workloads.graphs import Graph, cycle, ladder, random_graph


@st.composite
def small_boolean_queries(draw) -> tuple[Graph, ConjunctiveQuery]:
    order = draw(st.integers(min_value=3, max_value=7))
    max_edges = order * (order - 1) // 2
    edge_count = draw(st.integers(min_value=2, max_value=min(max_edges, 10)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_graph(order, edge_count, random.Random(seed))
    return graph, coloring_query(graph, emulate_boolean=False)


@given(small_boolean_queries())
def test_optimal_order_achieves_treewidth(pair):
    _, query = pair
    graph = join_graph(query)
    tw, order = treewidth_exact_order(graph)
    bucket = bucket_elimination_plan(query, order=order)
    assert bucket.induced_width <= tw
    # Equality: the bucket pass cannot beat treewidth either (its fronts
    # would otherwise give a narrower decomposition).  With one-variable
    # components the recorded arity can dip below, so compare against the
    # order's own induced width, which the theory says it matches.
    assert bucket.induced_width <= induced_width(graph, order)


@given(small_boolean_queries())
def test_no_order_beats_treewidth_on_connected_queries(pair):
    """For connected join graphs the process width of *any* numbering is
    at least the treewidth (sampled over a few numberings)."""
    import networkx as nx

    _, query = pair
    graph = join_graph(query)
    if not nx.is_connected(graph):
        return
    tw = treewidth_exact(graph)
    rng = random.Random(0)
    nodes = sorted(graph.nodes)
    for _ in range(5):
        rng.shuffle(nodes)
        bucket = bucket_elimination_plan(query, order=list(nodes))
        assert bucket.induced_width >= tw


@given(small_boolean_queries())
def test_mcs_never_beats_exact(pair):
    _, query = pair
    graph = join_graph(query)
    tw = treewidth_exact(graph)
    order = mcs_bucket_order(query)
    bucket = bucket_elimination_plan(query, order=order)
    import networkx as nx

    if nx.is_connected(graph):
        assert bucket.induced_width >= tw


@given(small_boolean_queries())
def test_bucket_answers_match_oracle_under_any_heuristic(pair):
    graph, query = pair
    database = edge_database()
    expected = is_colorable_brute_force(graph)
    for heuristic in ("mcs", "min_degree", "min_fill", "random"):
        plan = bucket_elimination_plan(
            query, heuristic=heuristic, rng=random.Random(1)
        ).plan
        result, _ = evaluate(plan, database)
        assert (not result.is_empty()) == expected


@pytest.mark.parametrize(
    "graph,expected_tw",
    [(cycle(5), 2), (cycle(8), 2), (ladder(4), 2)],
)
def test_known_families_induced_width(graph, expected_tw):
    query = coloring_query(graph, emulate_boolean=False)
    join = join_graph(query)
    tw, order = treewidth_exact_order(join)
    assert tw == expected_tw
    bucket = bucket_elimination_plan(query, order=order)
    assert bucket.induced_width == expected_tw


def test_non_boolean_exact_order_respects_free_prefix():
    graph = cycle(6)
    query = coloring_query(graph, free_vertices=(0, 3))
    join = join_graph(query)
    tw, order = treewidth_exact_order(
        join, pinned_first=frozenset(query.free_variables)
    )
    bucket = bucket_elimination_plan(query, order=order)
    # Free variables survive every bucket: the final plan still has them.
    assert set(query.free_variables) <= set(bucket.plan.columns)
    assert bucket.induced_width <= induced_width(join, order) + 1


def test_executed_arity_matches_process_width():
    """The statically computed induced width is what the engine actually
    sees: max executed arity <= induced width + 1 (the pre-projection
    join can be one wider)."""
    graph = cycle(7)
    query = coloring_query(graph, emulate_boolean=False)
    join = join_graph(query)
    _, order = treewidth_exact_order(join)
    bucket = bucket_elimination_plan(query, order=order)
    _, stats = evaluate(bucket.plan, edge_database())
    assert stats.max_intermediate_arity <= bucket.induced_width + 1
