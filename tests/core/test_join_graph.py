"""Join-graph construction: atom cliques plus the target-schema clique."""

from repro.core.join_graph import is_clique, join_graph, primal_graph_of_cliques
from repro.core.query import Atom, ConjunctiveQuery


def test_binary_atoms_yield_edges():
    query = ConjunctiveQuery(
        atoms=(Atom("edge", ("a", "b")), Atom("edge", ("b", "c")))
    )
    graph = join_graph(query)
    assert set(graph.nodes) == {"a", "b", "c"}
    assert graph.has_edge("a", "b")
    assert graph.has_edge("b", "c")
    assert not graph.has_edge("a", "c")


def test_wide_atom_yields_clique():
    query = ConjunctiveQuery(atoms=(Atom("r", ("a", "b", "c")),))
    graph = join_graph(query)
    assert is_clique(graph, {"a", "b", "c"})


def test_target_schema_clique_added():
    # a and c never co-occur in an atom, but both are free.
    query = ConjunctiveQuery(
        atoms=(Atom("edge", ("a", "b")), Atom("edge", ("b", "c"))),
        free_variables=("a", "c"),
    )
    graph = join_graph(query)
    assert graph.has_edge("a", "c")


def test_boolean_query_adds_no_extra_edges():
    query = ConjunctiveQuery(
        atoms=(Atom("edge", ("a", "b")), Atom("edge", ("c", "d")))
    )
    graph = join_graph(query)
    assert graph.number_of_edges() == 2


def test_single_free_variable_adds_nothing():
    query = ConjunctiveQuery(
        atoms=(Atom("edge", ("a", "b")),), free_variables=("a",)
    )
    graph = join_graph(query)
    assert graph.number_of_edges() == 1


def test_unary_atom_still_adds_node():
    query = ConjunctiveQuery(atoms=(Atom("r", ("lonely",)),))
    graph = join_graph(query)
    assert "lonely" in graph.nodes
    assert graph.number_of_edges() == 0


def test_primal_graph_of_cliques():
    graph = primal_graph_of_cliques([("a", "b", "c"), ("c", "d")])
    assert graph.has_edge("a", "c")
    assert graph.has_edge("c", "d")
    assert not graph.has_edge("a", "d")


def test_is_clique_on_non_clique():
    graph = primal_graph_of_cliques([("a", "b"), ("b", "c")])
    assert not is_clique(graph, {"a", "b", "c"})
    assert is_clique(graph, {"a", "b"})
    assert is_clique(graph, {"a"})
    assert is_clique(graph, set())
