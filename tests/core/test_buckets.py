"""Bucket elimination: placement, processing order, routing, tracing."""

import random

import pytest

from repro.core.buckets import (
    BucketTrace,
    bucket_elimination_plan,
    mcs_bucket_order,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.errors import OrderingError
from repro.plans import Project, iter_nodes, plan_width
from repro.relalg.database import Database, edge_database
from repro.relalg.engine import evaluate
from repro.relalg.relation import Relation
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import cycle, pentagon


@pytest.fixture
def pentagon_query():
    return coloring_query(pentagon())


class TestOrders:
    def test_mcs_bucket_order_free_first(self):
        query = coloring_query(pentagon(), free_vertices=(2, 4))
        order = mcs_bucket_order(query)
        assert set(order[:2]) == set(query.free_variables)

    def test_explicit_order_must_cover_all_variables(self, pentagon_query):
        with pytest.raises(OrderingError):
            bucket_elimination_plan(pentagon_query, order=["v1", "v2"])

    def test_free_after_bound_rejected(self):
        query = coloring_query(pentagon(), free_vertices=(0,))
        variables = sorted(query.variables)
        bad = [v for v in variables if v not in query.free_variables] + list(
            query.free_variables
        )
        with pytest.raises(OrderingError, match="free variables"):
            bucket_elimination_plan(query, order=bad)

    def test_unknown_heuristic_rejected(self, pentagon_query):
        with pytest.raises(OrderingError, match="unknown ordering heuristic"):
            bucket_elimination_plan(pentagon_query, heuristic="sorcery")


class TestProcessing:
    def test_pentagon_answer(self, pentagon_query):
        bucket = bucket_elimination_plan(pentagon_query)
        result, _ = evaluate(bucket.plan, edge_database())
        assert result.cardinality == 3

    def test_trace_covers_processed_buckets(self, pentagon_query):
        bucket = bucket_elimination_plan(pentagon_query)
        assert all(isinstance(step, BucketTrace) for step in bucket.trace)
        # Every bound variable that heads a nonempty bucket appears once.
        traced = [step.variable for step in bucket.trace]
        assert len(traced) == len(set(traced))

    def test_bound_variable_eliminated_in_its_bucket(self, pentagon_query):
        bucket = bucket_elimination_plan(pentagon_query)
        free = set(pentagon_query.free_variables)
        for step in bucket.trace:
            if step.variable not in free:
                assert step.variable not in step.output_columns

    def test_induced_width_pentagon(self, pentagon_query):
        # Pentagon treewidth is 2: optimal bucket processing computes
        # relations of arity exactly 2.
        bucket = bucket_elimination_plan(pentagon_query)
        assert bucket.induced_width == 2

    def test_plan_width_tracks_induced_width(self, pentagon_query):
        bucket = bucket_elimination_plan(pentagon_query)
        assert plan_width(bucket.plan) <= bucket.induced_width + 1

    def test_boolean_zero_ary_result(self):
        query = coloring_query(cycle(4), emulate_boolean=False)
        bucket = bucket_elimination_plan(query)
        result, _ = evaluate(bucket.plan, edge_database())
        assert result.columns == ()
        assert not result.is_empty()

    def test_empty_answer_on_uncolorable(self):
        # K4 is not 3-colorable.
        from repro.workloads.graphs import complete_graph

        query = coloring_query(complete_graph(4))
        bucket = bucket_elimination_plan(query)
        result, _ = evaluate(bucket.plan, edge_database())
        assert result.is_empty()

    def test_disconnected_query_cross_joins_finals(self):
        query = ConjunctiveQuery(
            atoms=(Atom("edge", ("a", "b")), Atom("edge", ("c", "d"))),
            free_variables=("a", "c"),
        )
        bucket = bucket_elimination_plan(query)
        result, _ = evaluate(bucket.plan, edge_database())
        assert result.cardinality == 9  # 3 choices for a x 3 for c

    def test_unary_relation_buckets(self):
        db = Database(
            {
                "r": Relation(("x",), [(1,), (2,)]),
                "s": Relation(("x", "y"), [(1, 5)]),
            }
        )
        query = ConjunctiveQuery(
            atoms=(Atom("r", ("a",)), Atom("s", ("a", "b"))),
            free_variables=("b",),
        )
        bucket = bucket_elimination_plan(query)
        result, _ = evaluate(bucket.plan, db)
        assert result.rows == {(5,)}

    def test_single_variable_query_witness_kept(self):
        """All residents mention only the eliminated variable: the witness
        rule keeps the intermediate relation 1-ary instead of 0-ary."""
        db = Database(
            {
                "r": Relation(("x",), [(1,), (2,)]),
                "s": Relation(("x",), [(2,), (3,)]),
                "t": Relation(("y", "z"), [(7, 8)]),
            }
        )
        query = ConjunctiveQuery(
            atoms=(Atom("r", ("a",)), Atom("s", ("a",)), Atom("t", ("y", "z"))),
            free_variables=("y",),
        )
        bucket = bucket_elimination_plan(query)
        for node in iter_nodes(bucket.plan):
            if isinstance(node, Project) and node is not bucket.plan:
                assert node.columns
        result, _ = evaluate(bucket.plan, db)
        assert result.rows == {(7,)}


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", ["mcs", "min_degree", "min_fill", "random"])
    def test_all_heuristics_correct(self, pentagon_query, heuristic):
        bucket = bucket_elimination_plan(
            pentagon_query, heuristic=heuristic, rng=random.Random(0)
        )
        result, _ = evaluate(bucket.plan, edge_database())
        assert result.cardinality == 3
