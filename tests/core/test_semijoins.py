"""GYO acyclicity, semijoin reduction, and the Yannakakis algorithm."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.planner import plan_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.semijoins import (
    gyo_reduction,
    is_acyclic,
    semijoin_reduce,
    yannakakis_evaluate,
)
from repro.errors import QueryStructureError
from repro.relalg.database import Database, edge_database
from repro.relalg.engine import evaluate
from repro.relalg.relation import Relation
from repro.relalg.stats import ExecutionStats
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import (
    augmented_path,
    cycle,
    path,
    random_graph,
    star,
)


class TestGyo:
    def test_path_is_acyclic(self):
        assert is_acyclic(coloring_query(path(4)))

    def test_star_is_acyclic(self):
        assert is_acyclic(coloring_query(star(5)))

    def test_augmented_path_is_acyclic(self):
        assert is_acyclic(coloring_query(augmented_path(4)))

    def test_cycle_is_cyclic(self):
        assert not is_acyclic(coloring_query(cycle(5)))

    def test_single_atom(self):
        query = ConjunctiveQuery(atoms=(Atom("r", ("x", "y")),))
        tree = gyo_reduction(query)
        assert tree is not None
        assert tree.root_count == 1

    def test_wide_atom_covering_cycle_is_acyclic(self):
        # A triangle of binary atoms is cyclic, but adding a ternary atom
        # covering all three variables makes the hypergraph acyclic.
        cyclic = ConjunctiveQuery(
            atoms=(
                Atom("edge", ("a", "b")),
                Atom("edge", ("b", "c")),
                Atom("edge", ("a", "c")),
            )
        )
        assert not is_acyclic(cyclic)
        covered = ConjunctiveQuery(atoms=cyclic.atoms + (Atom("t", ("a", "b", "c")),))
        assert is_acyclic(covered)

    def test_join_tree_parent_covers_shared_vars(self):
        query = coloring_query(augmented_path(5))
        tree = gyo_reduction(query)
        assert tree is not None
        # By construction: the tree has exactly one root per connected
        # component and every atom appears once in the order.
        assert sorted(tree.order) == list(range(len(query.atoms)))

    def test_disconnected_acyclic(self):
        query = ConjunctiveQuery(
            atoms=(Atom("edge", ("a", "b")), Atom("edge", ("c", "d")))
        )
        tree = gyo_reduction(query)
        assert tree is not None
        assert tree.root_count == 2


class TestSemijoinReduce:
    def test_cyclic_query_rejected(self):
        with pytest.raises(QueryStructureError, match="acyclic"):
            semijoin_reduce(coloring_query(cycle(4)), edge_database())

    def test_paper_claim_semijoins_useless_on_color_queries(self):
        """Section 2: projecting the edge relation yields all colors, so
        the full reducer removes nothing on 3-COLOR queries."""
        query = coloring_query(augmented_path(5))
        _, removed = semijoin_reduce(query, edge_database())
        assert not removed

    def test_reduction_removes_dangling_tuples(self):
        db = Database(
            {
                "r": Relation(("a", "b"), [(1, 2), (3, 9)]),  # (3,9) dangles
                "s": Relation(("b", "c"), [(2, 5)]),
            }
        )
        query = ConjunctiveQuery(
            atoms=(Atom("r", ("x", "y")), Atom("s", ("y", "z"))),
            free_variables=("x",),
        )
        reduced, removed = semijoin_reduce(query, db)
        assert removed
        assert reduced[0].rows == {(1, 2)}

    def test_reduction_is_sound(self):
        """Reduced relations give the same final answer."""
        db = Database(
            {
                "r": Relation(("a", "b"), [(1, 2), (3, 9), (4, 2)]),
                "s": Relation(("b", "c"), [(2, 5), (7, 7)]),
            }
        )
        query = ConjunctiveQuery(
            atoms=(Atom("r", ("x", "y")), Atom("s", ("y", "z"))),
            free_variables=("x", "z"),
        )
        answer = yannakakis_evaluate(query, db)
        direct, _ = evaluate(plan_query(query, "straightforward"), db)
        assert answer == direct


class TestYannakakis:
    def test_matches_bucket_on_acyclic_color_queries(self):
        query = coloring_query(augmented_path(4))
        db = edge_database()
        expected, _ = evaluate(plan_query(query, "bucket"), db)
        assert yannakakis_evaluate(query, db) == expected

    def test_boolean_query(self):
        query = coloring_query(star(4), emulate_boolean=False)
        result = yannakakis_evaluate(query, edge_database())
        assert result.columns == ()
        assert not result.is_empty()

    def test_empty_answer(self):
        db = Database(
            {
                "r": Relation(("a", "b"), [(1, 2)]),
                "s": Relation(("b", "c"), [(9, 5)]),
            }
        )
        query = ConjunctiveQuery(
            atoms=(Atom("r", ("x", "y")), Atom("s", ("y", "z"))),
            free_variables=("x",),
        )
        assert yannakakis_evaluate(query, db).is_empty()

    def test_cyclic_rejected(self):
        with pytest.raises(QueryStructureError):
            yannakakis_evaluate(coloring_query(cycle(4)), edge_database())

    def test_disconnected_components_cross_join(self):
        query = ConjunctiveQuery(
            atoms=(Atom("edge", ("a", "b")), Atom("edge", ("c", "d"))),
            free_variables=("a", "c"),
        )
        result = yannakakis_evaluate(query, edge_database())
        assert result.cardinality == 9

    def test_stats_populated(self):
        """Stats reflect the compiled plan's logical operator tree: every
        atom is scanned at least once (shared reduction chains recount
        their scans at each occurrence), the full reducer runs semijoins,
        and the join phase joins the reduced atoms."""
        stats = ExecutionStats()
        yannakakis_evaluate(coloring_query(path(3)), edge_database(), stats=stats)
        assert stats.scans >= 3
        assert stats.semijoins >= 2
        assert stats.joins >= 2
        # The engine's CSE cache materializes each shared chain once.
        assert stats.cache_hits > 0

    @given(st.integers(min_value=0, max_value=300))
    def test_random_forests_agree_with_bucket(self, seed):
        """Random acyclic (forest) 3-COLOR queries: Yannakakis equals
        bucket elimination."""
        rng = random.Random(seed)
        order = rng.randrange(3, 8)
        # Random forest: attach each vertex to a random earlier vertex.
        edges = []
        for v in range(1, order):
            if rng.random() < 0.8:
                edges.append((rng.randrange(v), v))
        if not edges:
            return
        from repro.workloads.graphs import Graph

        graph = Graph(order, tuple(edges))
        query = coloring_query(graph)
        assert is_acyclic(query)
        db = edge_database()
        expected, _ = evaluate(plan_query(query, "bucket"), db)
        assert yannakakis_evaluate(query, db) == expected
