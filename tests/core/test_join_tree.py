"""Join-expression trees: label computation, structure validation, and
Algorithms 1–3 on hand-built cases."""

import pytest

from repro.core.join_graph import join_graph
from repro.core.join_tree import (
    JoinExpressionTree,
    jet_to_plan,
    jet_to_tree_decomposition,
    mark_and_sweep,
    optimal_jet,
    tree_decomposition_to_jet,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.tree_decomposition import (
    decomposition_from_bags,
    from_elimination_order,
    trivial_decomposition,
)
from repro.errors import QueryStructureError
from repro.relalg.database import edge_database
from repro.relalg.engine import evaluate


@pytest.fixture
def path_query():
    return ConjunctiveQuery(
        atoms=(
            Atom("edge", ("a", "b")),
            Atom("edge", ("b", "c")),
            Atom("edge", ("c", "d")),
        ),
        free_variables=("a",),
    )


def linear_jet(query):
    """A comb-shaped JET: internal spine 10-11-12, leaves 0,1,2."""
    return JoinExpressionTree(
        query=query,
        root=12,
        children={12: [11, 2], 11: [10, 1], 10: [0], 0: [], 1: [], 2: []},
        leaf_atom={0: 0, 1: 1, 2: 2},
    )


class TestLabels:
    def test_leaf_working_labels_are_atom_schemes(self, path_query):
        jet = linear_jet(path_query)
        assert jet.working[0] == {"a", "b"}
        assert jet.working[2] == {"c", "d"}

    def test_leaf_projected_drops_once_only_vars(self, path_query):
        jet = linear_jet(path_query)
        # Leaf 2 carries edge(c, d); d occurs nowhere else and is bound,
        # so the definition-based projected label drops it.
        assert jet.projected[2] == {"c"}
        # Leaf 0 carries edge(a, b); a is free so it survives.
        assert jet.projected[0] == {"a", "b"}

    def test_internal_working_is_union_of_child_projections(self, path_query):
        jet = linear_jet(path_query)
        assert jet.working[11] == jet.projected[10] | jet.projected[1]

    def test_root_projects_to_target(self, path_query):
        jet = linear_jet(path_query)
        assert jet.projected[12] == {"a"}

    def test_width(self, path_query):
        jet = linear_jet(path_query)
        assert jet.width == max(len(label) for label in jet.working.values())


class TestStructureValidation:
    def test_orphan_node_rejected(self, path_query):
        with pytest.raises(QueryStructureError):
            JoinExpressionTree(
                query=path_query,
                root=10,
                children={10: [0, 1, 2], 99: []},
                leaf_atom={0: 0, 1: 1, 2: 2},
            )

    def test_atom_must_be_covered_once(self, path_query):
        with pytest.raises(QueryStructureError):
            JoinExpressionTree(
                query=path_query,
                root=10,
                children={10: [0, 1]},
                leaf_atom={0: 0, 1: 1},  # atom 2 missing
            )

    def test_two_parents_rejected(self, path_query):
        with pytest.raises(QueryStructureError):
            JoinExpressionTree(
                query=path_query,
                root=10,
                children={10: [11, 11], 11: [0, 1, 2]},
                leaf_atom={0: 0, 1: 1, 2: 2},
            )

    def test_unknown_root_rejected(self, path_query):
        with pytest.raises(QueryStructureError):
            JoinExpressionTree(
                query=path_query,
                root=77,
                children={10: [0, 1, 2]},
                leaf_atom={0: 0, 1: 1, 2: 2},
            )


class TestAlgorithm1:
    def test_jet_to_decomposition_valid(self, path_query):
        jet = linear_jet(path_query)
        td = jet_to_tree_decomposition(jet)
        td.validate_for(join_graph(path_query))

    def test_width_relationship(self, path_query):
        jet = linear_jet(path_query)
        td = jet_to_tree_decomposition(jet)
        assert td.width == jet.width - 1


class TestAlgorithm2:
    def test_mark_and_sweep_keeps_anchors(self, path_query):
        graph = join_graph(path_query)
        td = from_elimination_order(graph, ["a", "b", "c", "d"])
        simplified, anchor_of_atom, target_anchor = mark_and_sweep(td, path_query)
        simplified.validate_for(graph)
        for index, atom in enumerate(path_query.atoms):
            bag = simplified.bags[anchor_of_atom[index]]
            assert atom.variable_set <= bag
        assert set(path_query.free_variables) <= simplified.bags[target_anchor]

    def test_mark_and_sweep_never_widens(self, path_query):
        graph = join_graph(path_query)
        td = trivial_decomposition(graph)
        simplified, _, _ = mark_and_sweep(td, path_query)
        assert simplified.width <= td.width

    def test_rejects_decomposition_of_wrong_graph(self, path_query):
        wrong = decomposition_from_bags({0: {"a", "b"}}, [])
        with pytest.raises(QueryStructureError):
            mark_and_sweep(wrong, path_query)


class TestAlgorithm3:
    def test_round_trip_produces_executable_plan(self, path_query):
        graph = join_graph(path_query)
        td = from_elimination_order(graph, ["a", "b", "c", "d"])
        jet = tree_decomposition_to_jet(path_query, td)
        assert jet.width <= td.width + 1
        plan = jet_to_plan(jet)
        result, _ = evaluate(plan, edge_database())
        assert result.columns == ("a",)
        assert result.cardinality == 3

    def test_trivial_decomposition_round_trip(self, path_query):
        graph = join_graph(path_query)
        td = trivial_decomposition(graph)
        jet = tree_decomposition_to_jet(path_query, td)
        plan = jet_to_plan(jet)
        result, _ = evaluate(plan, edge_database())
        assert result.cardinality == 3


class TestOptimalJet:
    def test_path_query_width_two(self, path_query):
        jet = optimal_jet(path_query)
        assert jet.width == 2  # treewidth of a path is 1

    def test_single_atom_query(self):
        query = ConjunctiveQuery(
            atoms=(Atom("edge", ("a", "b")),), free_variables=("a",)
        )
        jet = optimal_jet(query)
        plan = jet_to_plan(jet)
        result, _ = evaluate(plan, edge_database())
        assert result.rows == {(1,), (2,), (3,)}

    def test_boolean_query(self):
        query = ConjunctiveQuery(
            atoms=(Atom("edge", ("a", "b")), Atom("edge", ("b", "c")))
        )
        jet = optimal_jet(query)
        plan = jet_to_plan(jet)
        result, _ = evaluate(plan, edge_database())
        assert result.columns == ()
        assert not result.is_empty()
