"""Generalized hypertree width: cover numbers and the acyclicity bridge."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hypertree import (
    cover_number,
    generalized_hypertree_width_of,
    ghw_upper_bound,
    is_width_one,
)
from repro.core.join_graph import join_graph
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.semijoins import is_acyclic
from repro.core.tree_decomposition import trivial_decomposition
from repro.errors import QueryStructureError
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import (
    augmented_path,
    complete_graph,
    cycle,
    path,
    random_graph,
    star,
)


class TestCoverNumber:
    def test_empty_target(self):
        assert cover_number((), [frozenset({"a"})]) == 0

    def test_single_scheme_covers(self):
        assert cover_number({"a", "b"}, [frozenset({"a", "b", "c"})]) == 1

    def test_needs_two(self):
        schemes = [frozenset({"a", "b"}), frozenset({"c", "d"})]
        assert cover_number({"a", "c"}, schemes) == 2

    def test_prefers_big_scheme(self):
        schemes = [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
            frozenset({"a", "b", "c"}),
        ]
        assert cover_number({"a", "b", "c"}, schemes) == 1

    def test_uncoverable_rejected(self):
        with pytest.raises(QueryStructureError, match="no scheme"):
            cover_number({"ghost"}, [frozenset({"a"})])

    def test_exactness_on_overlapping_schemes(self):
        schemes = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c", "d"}),
            frozenset({"a", "d"}),
        ]
        assert cover_number({"a", "b", "c", "d"}, schemes) == 2


class TestGhwOfDecomposition:
    def test_trivial_decomposition_of_wide_atom(self):
        # One 4-ary atom: the whole variable set is one scheme -> GHW 1
        # even though treewidth is 3.
        query = ConjunctiveQuery(atoms=(Atom("r", ("a", "b", "c", "d")),))
        td = trivial_decomposition(join_graph(query))
        assert generalized_hypertree_width_of(query, td) == 1

    def test_trivial_decomposition_of_binary_cycle(self):
        query = coloring_query(cycle(6), emulate_boolean=False)
        td = trivial_decomposition(join_graph(query))
        # Covering all 6 variables with binary edge atoms needs 3.
        assert generalized_hypertree_width_of(query, td) == 3


class TestUpperBound:
    @pytest.mark.parametrize(
        "graph,expected",
        [(path(4), 1), (star(5), 1), (augmented_path(3), 1), (cycle(5), 2)],
    )
    def test_known_families(self, graph, expected):
        query = coloring_query(graph, emulate_boolean=False)
        assert ghw_upper_bound(query) == expected

    def test_clique_needs_half(self):
        # K4 with binary atoms: bags of size 4 need 2 atoms.
        query = coloring_query(complete_graph(4), emulate_boolean=False)
        assert ghw_upper_bound(query) == 2

    def test_wide_atoms_beat_treewidth(self):
        """The hypertree story: one wide atom makes GHW 1 where treewidth
        is large."""
        query = ConjunctiveQuery(
            atoms=(
                Atom("wide", ("a", "b", "c", "d", "e2")),
                Atom("edge", ("a", "e2")),
            )
        )
        assert ghw_upper_bound(query) == 1

    @given(st.integers(min_value=0, max_value=200))
    def test_width_one_iff_acyclic(self, seed):
        """The classic theorem GHW = 1 ⟺ α-acyclic, cross-checked against
        the independent GYO implementation on random Boolean queries."""
        rng = random.Random(seed)
        order = rng.randrange(3, 8)
        max_edges = order * (order - 1) // 2
        graph = random_graph(order, rng.randrange(2, max_edges + 1), rng)
        query = coloring_query(graph, emulate_boolean=False)
        assert is_width_one(query) == is_acyclic(query)

    @given(st.integers(min_value=0, max_value=100))
    def test_ghw_at_most_treewidth_plus_one(self, seed):
        """Binary atoms: covering a bag of b variables needs at most
        ceil(b/2) <= b atoms, so GHW <= tw + 1 always."""
        from repro.core.treewidth import treewidth_exact

        rng = random.Random(seed)
        graph = random_graph(6, rng.randrange(2, 12), rng)
        query = coloring_query(graph, emulate_boolean=False)
        tw = treewidth_exact(join_graph(query))
        assert ghw_upper_bound(query) <= tw + 1
