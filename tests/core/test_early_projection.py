"""Early projection: projection points, live-variable bookkeeping."""

import pytest

from repro.core.early_projection import early_projection_plan, straightforward_plan
from repro.core.query import Atom, ConjunctiveQuery
from repro.plans import Project, Scan, count_joins, iter_nodes, plan_width
from repro.relalg.database import edge_database
from repro.relalg.engine import evaluate


def path_query(n, free=("v1",)):
    atoms = tuple(Atom("edge", (f"v{i}", f"v{i + 1}")) for i in range(1, n + 1))
    return ConjunctiveQuery(atoms=atoms, free_variables=free)


class TestStraightforward:
    def test_left_deep_no_intermediate_projection(self):
        plan = straightforward_plan(path_query(4))
        projections = [n for n in iter_nodes(plan) if isinstance(n, Project)]
        assert len(projections) == 1  # only the final one
        assert count_joins(plan) == 3  # 4 atoms -> 3 binary joins

    def test_width_grows_with_path_length(self):
        assert plan_width(straightforward_plan(path_query(5))) == 6

    def test_single_atom(self):
        query = ConjunctiveQuery(
            atoms=(Atom("edge", ("a", "b")),), free_variables=("a",)
        )
        plan = straightforward_plan(query)
        result, _ = evaluate(plan, edge_database())
        assert result.cardinality == 3

    def test_respects_listed_order(self):
        query = path_query(3)
        plan = straightforward_plan(query)
        scans = [n for n in iter_nodes(plan) if isinstance(n, Scan)]
        assert [s.variables for s in scans] == [
            ("v1", "v2"), ("v2", "v3"), ("v3", "v4"),
        ]


class TestEarlyProjection:
    def test_path_stays_narrow(self):
        # On a path in natural order, each variable dies right after its
        # second occurrence: width stays 3 regardless of length.
        plan = early_projection_plan(path_query(8))
        assert plan_width(plan) == 3

    def test_projects_after_last_occurrence(self):
        plan = early_projection_plan(path_query(4))
        projections = [n for n in iter_nodes(plan) if isinstance(n, Project)]
        assert len(projections) >= 3

    def test_free_variables_never_projected_early(self):
        query = path_query(4, free=("v1", "v5"))
        plan = early_projection_plan(query)
        for node in iter_nodes(plan):
            if isinstance(node, Project) and node is not plan:
                assert "v1" in node.columns

    def test_same_answer_as_straightforward(self):
        query = path_query(5)
        db = edge_database()
        a, _ = evaluate(straightforward_plan(query), db)
        b, _ = evaluate(early_projection_plan(query), db)
        assert a == b

    def test_never_wider_than_straightforward(self):
        query = path_query(6)
        assert plan_width(early_projection_plan(query)) <= plan_width(
            straightforward_plan(query)
        )

    def test_fewer_intermediate_tuples_on_paths(self):
        query = path_query(7)
        db = edge_database()
        _, s_stats = evaluate(straightforward_plan(query), db)
        _, e_stats = evaluate(early_projection_plan(query), db)
        assert (
            e_stats.total_intermediate_tuples < s_stats.total_intermediate_tuples
        )

    def test_disconnected_components_keep_witness(self):
        """When a component finishes and nothing else is live, one witness
        variable survives so no intermediate relation is 0-ary."""
        query = ConjunctiveQuery(
            atoms=(
                Atom("edge", ("a", "b")),
                Atom("edge", ("c", "d")),
                Atom("edge", ("d", "e")),
            ),
            free_variables=("c",),
        )
        plan = early_projection_plan(query)
        for node in iter_nodes(plan):
            if isinstance(node, Project) and node is not plan:
                assert node.columns, "intermediate 0-ary projection leaked"
        result, _ = evaluate(plan, edge_database())
        assert result.cardinality == 3

    def test_last_atom_projection_deferred_to_final(self):
        # Variables dying at the last atom are handled by the final
        # projection, not an extra intermediate one.
        plan = early_projection_plan(path_query(2))
        assert isinstance(plan, Project)
        assert plan.columns == ("v1",)
