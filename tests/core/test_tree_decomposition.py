"""Tree decompositions: validation and the elimination-order constructor."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import induced_width, min_fill_order
from repro.core.tree_decomposition import (
    TreeDecomposition,
    decomposition_from_bags,
    from_elimination_order,
    trivial_decomposition,
)
from repro.errors import QueryStructureError


@pytest.fixture
def triangle():
    return nx.complete_graph(["a", "b", "c"])


@pytest.fixture
def path4():
    return nx.path_graph(["a", "b", "c", "d"])


class TestValidation:
    def test_trivial_decomposition_valid(self, triangle):
        td = trivial_decomposition(triangle)
        assert td.is_valid_for(triangle)
        assert td.width == 2

    def test_path_decomposition(self, path4):
        td = decomposition_from_bags(
            {0: {"a", "b"}, 1: {"b", "c"}, 2: {"c", "d"}},
            [(0, 1), (1, 2)],
        )
        assert td.is_valid_for(path4)
        assert td.width == 1

    def test_missing_vertex_detected(self, path4):
        td = decomposition_from_bags(
            {0: {"a", "b"}, 1: {"b", "c"}}, [(0, 1)]
        )
        assert not td.covers_vertices(path4)
        with pytest.raises(QueryStructureError, match="vertices"):
            td.validate_for(path4)

    def test_missing_edge_detected(self, path4):
        td = decomposition_from_bags(
            {0: {"a", "b"}, 1: {"b", "c"}, 2: {"d"}}, [(0, 1), (1, 2)]
        )
        assert not td.covers_edges(path4)
        with pytest.raises(QueryStructureError, match="edges"):
            td.validate_for(path4)

    def test_disconnected_occurrence_detected(self, path4):
        # "a" occurs in bags 0 and 2, but not in bag 1 between them.
        td = decomposition_from_bags(
            {0: {"a", "b"}, 1: {"b", "c"}, 2: {"a", "c", "d"}},
            [(0, 1), (1, 2)],
        )
        assert not td.has_connected_occurrences()
        with pytest.raises(QueryStructureError, match="disconnected"):
            td.validate_for(path4)

    def test_non_tree_edges_rejected(self):
        with pytest.raises(QueryStructureError, match="tree"):
            decomposition_from_bags(
                {0: {"a"}, 1: {"a"}, 2: {"a"}},
                [(0, 1), (1, 2), (0, 2)],
            )

    def test_forest_rejected(self):
        with pytest.raises(QueryStructureError):
            decomposition_from_bags({0: {"a"}, 1: {"a"}}, [])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(QueryStructureError, match="unknown"):
            decomposition_from_bags({0: {"a"}}, [(0, 7)])


class TestAccessors:
    def test_width_empty(self):
        td = TreeDecomposition({}, [])
        assert td.width == -1

    def test_neighbors(self):
        td = decomposition_from_bags(
            {0: {"a"}, 1: {"a"}, 2: {"a"}}, [(0, 1), (1, 2)]
        )
        assert sorted(td.neighbors(1)) == [0, 2]

    def test_find_bag_containing(self, path4):
        td = from_elimination_order(path4, sorted(path4.nodes))
        assert td.find_bag_containing({"a", "b"}) is not None
        assert td.find_bag_containing({"a", "d"}) is None

    def test_copy_is_independent(self, triangle):
        td = trivial_decomposition(triangle)
        clone = td.copy()
        clone.bags[99] = frozenset()
        assert 99 not in td.bags


class TestFromEliminationOrder:
    def test_empty_graph(self):
        td = from_elimination_order(nx.Graph(), [])
        assert td.width <= 0

    def test_path_natural_order(self, path4):
        order = ["a", "b", "c", "d"]
        td = from_elimination_order(path4, order)
        td.validate_for(path4)
        assert td.width == induced_width(path4, order) == 1

    def test_cycle(self):
        graph = nx.cycle_graph(6)
        order = min_fill_order(graph)
        td = from_elimination_order(graph, order)
        td.validate_for(graph)
        assert td.width == 2

    def test_disconnected_graph_still_a_tree(self):
        graph = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        order = sorted(graph.nodes)
        td = from_elimination_order(graph, order)
        td.validate_for(graph)

    def test_width_equals_induced_width(self):
        graph = nx.grid_2d_graph(3, 3)
        order = min_fill_order(graph)
        td = from_elimination_order(graph, order)
        assert td.width == induced_width(graph, order)


@st.composite
def graphs_with_orders(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), max_size=12, unique=True)) if pairs else []
    graph.add_edges_from(edges)
    order = draw(st.permutations(list(range(n))))
    return graph, list(order)


@given(graphs_with_orders())
def test_any_order_yields_valid_decomposition(pair):
    """Property: from_elimination_order is always a *valid* decomposition
    whose width equals the order's induced width — the Theorem 2 bridge."""
    graph, order = pair
    td = from_elimination_order(graph, order)
    td.validate_for(graph)
    assert td.width == induced_width(graph, order)
