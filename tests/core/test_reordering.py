"""Greedy atom reordering (Section 4)."""

import random

import pytest

from repro.core.query import Atom, ConjunctiveQuery
from repro.core.reordering import greedy_atom_order, reordering_plan
from repro.plans import plan_width
from repro.relalg.database import edge_database
from repro.relalg.engine import evaluate
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import star


def test_order_is_permutation():
    query = coloring_query(star(5))
    order = greedy_atom_order(query)
    assert sorted(order) == list(range(len(query.atoms)))


def test_prefers_atoms_with_dying_variables():
    # v3 occurs only in atom 1; v4/v5 only in atom 2.  Atom 0's variables
    # both recur.  The greedy picks atom 2 first (two dying variables).
    query = ConjunctiveQuery(
        atoms=(
            Atom("edge", ("v1", "v2")),
            Atom("edge", ("v2", "v3")),
            Atom("edge", ("v4", "v5")),
        ),
        free_variables=("v1",),
    )
    order = greedy_atom_order(query)
    assert order[0] == 2


def test_free_variables_do_not_count_as_dying():
    query = ConjunctiveQuery(
        atoms=(
            Atom("edge", ("v1", "v2")),   # v1 free: only v2 recurs
            Atom("edge", ("v2", "v3")),
        ),
        free_variables=("v1",),
    )
    order = greedy_atom_order(query)
    # Atom 1 has a genuinely dying bound variable (v3); atom 0's dying
    # candidate v1 is free and must not be counted.
    assert order[0] == 1


def test_tie_break_prefers_least_shared():
    query = ConjunctiveQuery(
        atoms=(
            Atom("edge", ("a", "b")),   # shares a and b
            Atom("edge", ("b", "c")),   # shares b and c
            Atom("edge", ("a", "c")),   # shares a and c
            Atom("edge", ("c", "d")),   # d dies instantly
        ),
        free_variables=("a",),
    )
    order = greedy_atom_order(query)
    assert order[0] == 3


def test_deterministic_default_rng():
    query = coloring_query(star(6))
    assert greedy_atom_order(query) == greedy_atom_order(query)


def test_reordering_plan_same_answer():
    from repro.core.early_projection import straightforward_plan

    query = coloring_query(star(5))
    db = edge_database()
    a, _ = evaluate(straightforward_plan(query), db)
    b, _ = evaluate(reordering_plan(query, rng=random.Random(7)), db)
    assert a == b


def test_reordering_narrower_on_scattered_occurrences():
    """A variable occurring in the first and last atoms stays live across
    the whole listed order; reordering can retire it immediately."""
    from repro.core.early_projection import early_projection_plan

    atoms = (
        Atom("edge", ("x", "a")),
        Atom("edge", ("a", "b")),
        Atom("edge", ("b", "c")),
        Atom("edge", ("c", "d")),
        Atom("edge", ("x", "d")),
    )
    query = ConjunctiveQuery(atoms=atoms, free_variables=("a",))
    listed = plan_width(early_projection_plan(query))
    reordered = plan_width(reordering_plan(query))
    assert reordered <= listed
