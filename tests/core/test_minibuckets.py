"""Mini-bucket elimination: relaxation property and exactness conditions."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buckets import bucket_elimination_plan
from repro.core.minibuckets import mini_bucket_plan
from repro.core.planner import plan_query
from repro.errors import OrderingError
from repro.relalg.database import edge_database
from repro.relalg.engine import evaluate
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import complete_graph, cycle, pentagon, random_graph


class TestValidation:
    def test_ibound_must_be_positive(self):
        query = coloring_query(pentagon())
        with pytest.raises(OrderingError):
            mini_bucket_plan(query, ibound=0)

    def test_order_must_cover_variables(self):
        query = coloring_query(pentagon())
        with pytest.raises(OrderingError):
            mini_bucket_plan(query, ibound=3, order=["v1"])


class TestExactness:
    def test_large_ibound_is_exact(self):
        query = coloring_query(pentagon())
        mb = mini_bucket_plan(query, ibound=10)
        assert mb.exact
        exact, _ = evaluate(bucket_elimination_plan(query).plan, edge_database())
        relaxed, _ = evaluate(mb.plan, edge_database())
        assert relaxed == exact

    def test_small_ibound_splits_buckets(self):
        query = coloring_query(complete_graph(5))
        mb = mini_bucket_plan(query, ibound=2)
        assert not mb.exact

    def test_step_arity_respects_bound(self):
        query = coloring_query(complete_graph(5))
        ibound = 3
        mb = mini_bucket_plan(query, ibound=ibound)
        # Output arity is bounded by the mini-bucket schema (<= ibound),
        # possibly minus the eliminated variable.
        assert mb.max_step_arity <= ibound


class TestRelaxation:
    def test_superset_of_true_answer(self):
        query = coloring_query(complete_graph(4))  # not 3-colorable
        exact, _ = evaluate(plan_query(query, "bucket"), edge_database())
        relaxed, _ = evaluate(
            mini_bucket_plan(query, ibound=2).plan, edge_database()
        )
        assert exact.rows <= relaxed.rows

    def test_nonempty_exact_implies_nonempty_relaxed(self):
        query = coloring_query(cycle(5))
        relaxed, _ = evaluate(
            mini_bucket_plan(query, ibound=2).plan, edge_database()
        )
        assert not relaxed.is_empty()

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=4),
    )
    def test_relaxation_property_on_random_instances(self, seed, ibound):
        rng = random.Random(seed)
        order = rng.randrange(4, 7)
        max_edges = order * (order - 1) // 2
        graph = random_graph(order, rng.randrange(2, max_edges + 1), rng)
        query = coloring_query(graph)
        db = edge_database()
        exact, _ = evaluate(plan_query(query, "bucket"), db)
        mb = mini_bucket_plan(query, ibound=ibound, rng=random.Random(seed))
        relaxed, _ = evaluate(mb.plan, db)
        assert exact.rows <= relaxed.rows
        if mb.exact:
            assert relaxed == exact

    @given(st.integers(min_value=0, max_value=100))
    def test_increasing_ibound_reaches_exactness(self, seed):
        rng = random.Random(seed)
        graph = random_graph(5, rng.randrange(3, 10), rng)
        query = coloring_query(graph)
        mb = mini_bucket_plan(query, ibound=len(query.variables) + 1)
        assert mb.exact


class TestFreeVariables:
    def test_free_variables_survive(self):
        query = coloring_query(pentagon(), free_vertices=(0, 2))
        mb = mini_bucket_plan(query, ibound=2)
        relaxed, _ = evaluate(mb.plan, edge_database())
        assert set(relaxed.columns) == set(query.free_variables)
        exact, _ = evaluate(plan_query(query, "bucket"), edge_database())
        assert exact.rows <= relaxed.reorder(exact.columns).rows
