"""Property suite for the plan-compiled Yannakakis method.

Random *guaranteed-acyclic* queries come from the mediator generators
(chains, stars, snowflakes are all GYO-reducible); on them "yannakakis"
must agree with every width-oriented method of the paper, execute
through the ordinary engine, and survive the SQL round trip via
correlated ``EXISTS``.  Cyclic queries must be rejected with a clean
:class:`~repro.errors.QueryStructureError`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import METHODS, plan_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.semijoins import yannakakis_plan
from repro.errors import QueryStructureError
from repro.plans import Semijoin, walk
from repro.relalg.engine import evaluate
from repro.sql.executor import execute as sql_execute
from repro.sql.generator import generate_sql
from repro.sql.parser import parse
from repro.workloads.mediator import chain_query, snowflake_query, star_query

PAPER_METHODS = METHODS[:5]


@st.composite
def acyclic_instances(draw):
    """A random acyclic (query, database) pair from the mediator families."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    shape = draw(st.sampled_from(["chain", "star", "snowflake"]))
    rng = random.Random(seed)
    if shape == "chain":
        return chain_query(draw(st.integers(2, 6)), rng)
    if shape == "star":
        return star_query(draw(st.integers(2, 5)), rng)
    branches = draw(st.integers(2, 3))
    # Three branches of depth 2 can exceed 18 variables — past the
    # exact-treewidth limit the "jointree" method is documented to
    # refuse — so keep the instances inside every method's domain.
    depth = draw(st.integers(1, 2 if branches == 2 else 1))
    return snowflake_query(branches, depth, rng)


@given(acyclic_instances())
@settings(max_examples=30, deadline=None)
def test_yannakakis_agrees_with_all_paper_methods(pair):
    query, database = pair
    reference, _ = evaluate(yannakakis_plan(query), database)
    for method in PAPER_METHODS:
        plan = plan_query(query, method, rng=random.Random(3))
        result, _ = evaluate(plan, database)
        assert result == reference, method


@given(acyclic_instances())
@settings(max_examples=20, deadline=None)
def test_yannakakis_plan_has_semijoins_and_round_trips_as_sql(pair):
    query, database = pair
    plan = yannakakis_plan(query)
    if len(query.atoms) > 1:
        assert any(isinstance(node, Semijoin) for node in walk(plan))
    expected, _ = evaluate(plan, database)
    if not query.free_variables:
        return  # SQL cannot express 0-ary outputs
    text = generate_sql(query, "yannakakis")
    assert "EXISTS" in text or len(query.atoms) == 1
    got = sql_execute(parse(text), database)
    assert got == expected


def test_cyclic_query_rejected_cleanly():
    triangle = ConjunctiveQuery(
        atoms=(
            Atom("edge", ("X", "Y")),
            Atom("edge", ("Y", "Z")),
            Atom("edge", ("Z", "X")),
        ),
        free_variables=(),
    )
    with pytest.raises(QueryStructureError, match="acyclic"):
        yannakakis_plan(triangle)
    with pytest.raises(QueryStructureError, match="acyclic"):
        plan_query(triangle, "yannakakis")
