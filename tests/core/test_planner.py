"""The planning facade: all methods, same answers, expected width order."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.planner import METHODS, plan_query
from repro.core.semijoins import is_acyclic
from repro.errors import PlanError, QueryStructureError
from repro.plans import plan_width

#: The paper's own five methods — "yannakakis" (Section 7's semijoin
#: direction) additionally requires acyclicity, so cyclic-workload tests
#: iterate these and cover "yannakakis" via its QueryStructureError path.
PAPER_METHODS = METHODS[:5]
from repro.relalg.database import edge_database
from repro.relalg.engine import evaluate
from repro.workloads.coloring import (
    coloring_query,
    is_colorable_brute_force,
)
from repro.workloads.graphs import pentagon, random_graph


def test_unknown_method_rejected(pentagon_instance):
    with pytest.raises(PlanError, match="unknown planning method"):
        plan_query(pentagon_instance.query, "magic")


def test_methods_tuple_matches_paper_order():
    assert METHODS == (
        "straightforward",
        "early",
        "reordering",
        "bucket",
        "jointree",
        "yannakakis",
    )


@pytest.mark.parametrize("method", PAPER_METHODS)
def test_each_method_executes(pentagon_instance, method):
    plan = plan_query(pentagon_instance.query, method, rng=random.Random(0))
    result, _ = evaluate(plan, pentagon_instance.database)
    assert result.cardinality == 3


def test_yannakakis_rejects_cyclic_pentagon(pentagon_instance):
    with pytest.raises(QueryStructureError, match="acyclic"):
        plan_query(pentagon_instance.query, "yannakakis")


def test_width_ordering_on_pentagon(pentagon_instance):
    """The paper's narrative in one assertion: each method is at most as
    wide as its predecessors on the running example."""
    widths = {
        method: plan_width(plan_query(pentagon_instance.query, method))
        for method in PAPER_METHODS
    }
    assert widths["jointree"] <= widths["bucket"] <= widths["reordering"]
    assert widths["bucket"] <= widths["early"] <= widths["straightforward"]


def test_bucket_explicit_order_honoured(pentagon_instance):
    from repro.core.join_graph import join_graph
    from repro.core.treewidth import treewidth_exact_order

    graph = join_graph(pentagon_instance.query)
    _, order = treewidth_exact_order(
        graph, pinned_first=frozenset(pentagon_instance.query.free_variables)
    )
    plan = plan_query(pentagon_instance.query, "bucket", order=order)
    result, stats = evaluate(plan, pentagon_instance.database)
    assert result.cardinality == 3
    assert stats.max_intermediate_arity <= 3


@st.composite
def color_instances(draw):
    order = draw(st.integers(min_value=3, max_value=7))
    max_edges = order * (order - 1) // 2
    edges = draw(st.integers(min_value=1, max_value=min(max_edges, 11)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_graph(order, edges, random.Random(seed))
    return graph, coloring_query(graph)


@given(color_instances())
def test_all_methods_agree_with_oracle(pair):
    """The grand agreement property: every method's answer equals the
    brute-force 3-colorability oracle on random instances ("yannakakis"
    joins in whenever the instance happens to be acyclic)."""
    graph, query = pair
    database = edge_database()
    expected = is_colorable_brute_force(graph)
    methods = list(PAPER_METHODS)
    if is_acyclic(query):
        methods.append("yannakakis")
    for method in methods:
        plan = plan_query(query, method, rng=random.Random(42))
        result, _ = evaluate(plan, database)
        assert (not result.is_empty()) == expected, method


@given(color_instances())
def test_all_methods_same_answer_relation(pair):
    """Stronger: the full answer relations coincide, not just emptiness."""
    _, query = pair
    database = edge_database()
    reference, _ = evaluate(plan_query(query, "straightforward"), database)
    methods = list(PAPER_METHODS[1:])
    if is_acyclic(query):
        methods.append("yannakakis")
    for method in methods:
        result, _ = evaluate(plan_query(query, method, rng=random.Random(1)), database)
        assert result == reference, method


class TestAutoMethod:
    def test_auto_small_uses_exact_order(self, pentagon_instance):
        plan = plan_query(pentagon_instance.query, "auto")
        result, stats = evaluate(plan, pentagon_instance.database)
        assert result.cardinality == 3
        # Pentagon treewidth 2 -> optimal arity 3, which auto achieves.
        assert stats.max_intermediate_arity <= 3

    def test_auto_large_falls_back_to_mcs(self):
        graph = random_graph(20, 30, random.Random(0))
        query = coloring_query(graph)
        plan = plan_query(query, "auto", rng=random.Random(0))
        result, _ = evaluate(plan, edge_database())
        reference, _ = evaluate(plan_query(query, "bucket"), edge_database())
        assert result == reference

    @given(color_instances())
    def test_auto_agrees_with_oracle(self, pair):
        graph, query = pair
        plan = plan_query(query, "auto", rng=random.Random(0))
        result, _ = evaluate(plan, edge_database())
        assert (not result.is_empty()) == is_colorable_brute_force(graph)

    def test_auto_never_wider_than_mcs_bucket(self, pentagon_instance):
        auto_width = plan_width(plan_query(pentagon_instance.query, "auto"))
        mcs_width = plan_width(plan_query(pentagon_instance.query, "bucket"))
        assert auto_width <= mcs_width


class TestCanonicalizerHook:
    def test_hook_applied_and_restorable(self, pentagon_instance):
        from repro.core.planner import canonical_plan, plan_canonicalizer
        from repro.rewrite import normalize

        seen = []

        def hook(plan):
            seen.append(plan)
            return normalize(plan)

        with plan_canonicalizer(hook):
            plan = plan_query(pentagon_instance.query, "bucket")
            assert seen, "hook was not applied by plan_query"
            assert plan == normalize(seen[-1])
            assert canonical_plan(seen[-1]) == plan

    def test_context_manager_restores_on_error(self, pentagon_instance):
        from repro.core.planner import canonical_plan, plan_canonicalizer
        from repro.rewrite import normalize

        with pytest.raises(RuntimeError):
            with plan_canonicalizer(normalize):
                raise RuntimeError("boom")
        plan = plan_query(pentagon_instance.query, "bucket")
        assert canonical_plan(plan) is plan

    def test_context_manager_nests_and_restores_outer(self, pentagon_instance):
        from repro.core.planner import canonical_plan, plan_canonicalizer
        from repro.rewrite import normalize

        def identity(plan):
            return plan

        with plan_canonicalizer(normalize):
            with plan_canonicalizer(identity):
                plan = plan_query(pentagon_instance.query, "bucket")
                assert canonical_plan(plan) is plan
            restored = plan_query(pentagon_instance.query, "bucket")
            assert restored == normalize(restored)

    def test_no_hook_is_identity(self, pentagon_instance):
        from repro.core.planner import canonical_plan

        plan = plan_query(pentagon_instance.query, "bucket")
        assert canonical_plan(plan) is plan
