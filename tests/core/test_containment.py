"""Chandra–Merlin containment and minimization, decided structurally."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.containment import (
    are_equivalent,
    canonical_database,
    homomorphism_exists,
    is_contained,
    minimize,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.errors import QueryStructureError
from repro.workloads.coloring import coloring_query
from repro.workloads.graphs import cycle, path, random_graph


def edge_query(edges, free=("x0",)):
    """Boolean-ish query over a single binary relation ``e``."""
    atoms = tuple(Atom("e", (f"x{u}", f"x{v}")) for u, v in edges)
    return ConjunctiveQuery(atoms=atoms, free_variables=free)


class TestCanonicalDatabase:
    def test_one_tuple_per_atom(self):
        query = edge_query([(0, 1), (1, 2)])
        canonical = canonical_database(query)
        assert canonical.database["e"].cardinality == 2

    def test_frozen_head(self):
        query = edge_query([(0, 1)], free=("x0", "x1"))
        canonical = canonical_database(query)
        assert canonical.frozen_head == ("«x0»", "«x1»")

    def test_inconsistent_arity_rejected(self):
        query = ConjunctiveQuery(
            atoms=(Atom("r", ("a", "b")), Atom("r", ("a",))),
        )
        with pytest.raises(QueryStructureError, match="arities"):
            canonical_database(query)


class TestContainment:
    def test_longer_path_contained_in_shorter(self):
        """A 3-path maps homomorphically onto... actually: the query
        "there is a 2-path from x0" contains the query "there is a
        3-path from x0" is false in general; but every 2-path query
        contains the 2-path query itself."""
        two = edge_query([(0, 1), (1, 2)])
        assert is_contained(two, two)

    def test_path_contained_in_single_edge(self):
        # Q1: x0 -> x1 -> x2 (answers: starts of 2-paths)
        # Q2: x0 -> x1       (answers: starts of edges)
        # Every start of a 2-path starts an edge: Q1 ⊆ Q2.
        q1 = edge_query([(0, 1), (1, 2)])
        q2 = edge_query([(0, 1)])
        assert is_contained(q1, q2)
        assert not is_contained(q2, q1)

    def test_even_cycle_collapses_to_edge(self):
        # Boolean query "there is a 4-cycle" is contained in "there is an
        # edge", and an even cycle maps onto a single back-and-forth edge,
        # so the reverse holds too (over directed... here e is a plain
        # relation, so C4 folds onto 2 alternating constants).
        c4 = ConjunctiveQuery(
            atoms=(
                Atom("e", ("a", "b")),
                Atom("e", ("b", "c")),
                Atom("e", ("c", "d")),
                Atom("e", ("d", "a")),
            ),
        )
        edge = ConjunctiveQuery(atoms=(Atom("e", ("a", "b")),))
        assert is_contained(c4, edge)
        assert not is_contained(edge, c4)  # an edge need not lie on a C4

    def test_mismatched_schemas_rejected(self):
        q1 = edge_query([(0, 1)], free=("x0",))
        q2 = edge_query([(0, 1)], free=("x0", "x1"))
        with pytest.raises(QueryStructureError):
            is_contained(q1, q2)

    def test_unknown_relation_means_not_contained(self):
        q1 = edge_query([(0, 1)])
        q2 = ConjunctiveQuery(
            atoms=(Atom("other", ("x0", "x1")),), free_variables=("x0",)
        )
        assert not is_contained(q1, q2)

    def test_boolean_containment(self):
        q1 = ConjunctiveQuery(atoms=(Atom("e", ("a", "b")), Atom("e", ("b", "c"))))
        q2 = ConjunctiveQuery(atoms=(Atom("e", ("x", "y")),))
        assert is_contained(q1, q2)

    @pytest.mark.parametrize("method", ["straightforward", "early", "bucket"])
    def test_method_independent(self, method):
        q1 = edge_query([(0, 1), (1, 2)])
        q2 = edge_query([(0, 1)])
        assert is_contained(q1, q2, method=method)

    def test_homomorphism_alias(self):
        q1 = edge_query([(0, 1), (1, 2)])
        q2 = edge_query([(0, 1)])
        # hom: q2 -> q1 exists (map the edge onto the path's first edge).
        assert homomorphism_exists(q2, q1)


class TestMinimize:
    def test_duplicate_atom_removed(self):
        query = ConjunctiveQuery(
            atoms=(Atom("e", ("a", "b")), Atom("e", ("a", "b"))),
            free_variables=("a",),
        )
        minimal = minimize(query)
        assert len(minimal.atoms) == 1

    def test_folding_chain(self):
        # x0->x1->x2 with head x0 only: the second atom folds onto the
        # first only if there's a homomorphism fixing x0 mapping x2->x0;
        # that requires e(x0,x1) & e(x1,x0)-shaped folding, which a bare
        # 2-path does not admit — so the chain is already minimal.
        query = edge_query([(0, 1), (1, 2)])
        assert len(minimize(query).atoms) == 2

    def test_redundant_specialization_removed(self):
        # e(a,b) & e(a,c): c can map to b (both only constrained by a).
        query = ConjunctiveQuery(
            atoms=(Atom("e", ("a", "b")), Atom("e", ("a", "c"))),
            free_variables=("a",),
        )
        minimal = minimize(query)
        assert len(minimal.atoms) == 1

    def test_free_variables_block_folding(self):
        # Same shape, but b and c are both free: no folding allowed.
        query = ConjunctiveQuery(
            atoms=(Atom("e", ("a", "b")), Atom("e", ("a", "c"))),
            free_variables=("a", "b", "c"),
        )
        assert len(minimize(query).atoms) == 2

    def test_minimized_equivalent_to_original(self):
        query = ConjunctiveQuery(
            atoms=(
                Atom("e", ("a", "b")),
                Atom("e", ("a", "c")),
                Atom("e", ("c", "d")),
                Atom("e", ("a", "e2")),
            ),
            free_variables=("a",),
        )
        minimal = minimize(query)
        assert are_equivalent(minimal, query)
        assert len(minimal.atoms) <= len(query.atoms)

    def test_directed_cycle_is_a_core(self):
        # The directed 4-cycle has no proper retract (no 2-cycle among its
        # atoms), so minimization must leave it untouched.
        c4 = ConjunctiveQuery(
            atoms=(
                Atom("e", ("a", "b")),
                Atom("e", ("b", "c")),
                Atom("e", ("c", "d")),
                Atom("e", ("d", "a")),
            ),
        )
        minimal = minimize(c4)
        assert len(minimal.atoms) == 4

    def test_cycle_with_chord_shortcut_folds(self):
        # C4 plus both 2-cycle chords between a and b: the cycle folds
        # onto the 2-cycle {a->b, b->a}.
        query = ConjunctiveQuery(
            atoms=(
                Atom("e", ("a", "b")),
                Atom("e", ("b", "a")),
                Atom("e", ("b", "c")),
                Atom("e", ("c", "d")),
                Atom("e", ("d", "a")),
            ),
        )
        minimal = minimize(query)
        assert len(minimal.atoms) == 2
        assert are_equivalent(minimal, query)


class TestRandomizedSoundness:
    @given(st.integers(min_value=0, max_value=200))
    def test_minimize_preserves_answers_on_real_data(self, seed):
        """Minimized 3-COLOR queries agree with the original on the actual
        color database (equivalence must hold on *every* database)."""
        from repro.core.planner import plan_query
        from repro.relalg.database import edge_database
        from repro.relalg.engine import evaluate

        rng = random.Random(seed)
        graph = random_graph(5, rng.randrange(2, 9), rng)
        query = coloring_query(graph)
        minimal = minimize(query)
        db = edge_database()
        original, _ = evaluate(plan_query(query, "bucket"), db)
        reduced, _ = evaluate(plan_query(minimal, "bucket"), db)
        assert original == reduced

    @given(st.integers(min_value=0, max_value=100))
    def test_containment_antisymmetry_modulo_equivalence(self, seed):
        rng = random.Random(seed)
        g1 = random_graph(4, rng.randrange(1, 6), rng)
        g2 = random_graph(4, rng.randrange(1, 6), rng)
        q1 = coloring_query(g1, emulate_boolean=False)
        q2 = coloring_query(g2, emulate_boolean=False)
        forward = is_contained(q1, q2)
        backward = is_contained(q2, q1)
        if forward and backward:
            assert are_equivalent(q1, q2)


def _brute_force_homomorphism(source, target):
    """Oracle: search all variable mappings source -> target constants
    (target's canonical database), fixing shared free variables."""
    from itertools import product

    from repro.core.containment import canonical_database

    canonical = canonical_database(target)
    source_vars = sorted(source.variables)
    # Candidate images: the frozen constants of the target query.
    images = sorted(
        {f"«{v}»" for v in target.variables}
    )
    fixed = {f: f"«{f}»" for f in source.free_variables}
    free_positions = [v for v in source_vars if v not in fixed]
    target_facts = {
        name: canonical.database.get(name).rows
        for name in canonical.database.names()
    }
    for assignment in product(images, repeat=len(free_positions)):
        mapping = dict(fixed)
        mapping.update(zip(free_positions, assignment))
        ok = True
        for atom in source.atoms:
            if atom.relation not in target_facts:
                ok = False
                break
            image = tuple(
                mapping[t] if isinstance(t, str) else t.value for t in atom.terms
            )
            if image not in target_facts[atom.relation]:
                ok = False
                break
        if ok:
            return True
    return False


class TestAgainstBruteForceOracle:
    @given(st.integers(min_value=0, max_value=150))
    def test_containment_matches_homomorphism_search(self, seed):
        """is_contained(q1, q2) must equal 'exists hom q2 -> q1 fixing
        the head' — checked against an independent exhaustive search."""
        rng = random.Random(seed)
        g1 = random_graph(4, rng.randrange(1, 6), rng)
        g2 = random_graph(4, rng.randrange(1, 6), rng)
        q1 = coloring_query(g1)
        q2_base = coloring_query(g2)
        if not set(q1.free_variables) <= q2_base.variables:
            return
        q2 = q2_base.with_free_variables(q1.free_variables)
        expected = _brute_force_homomorphism(q2, q1)
        assert is_contained(q1, q2) == expected
