"""Variable orderings and induced width."""

import random

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import (
    ORDER_HEURISTICS,
    elimination_fronts,
    induced_width,
    mcs_order,
    min_degree_order,
    min_fill_order,
    random_order,
)
from repro.errors import OrderingError


def path_graph(n):
    return nx.path_graph([f"v{i}" for i in range(n)])


def cycle_graph(n):
    return nx.cycle_graph([f"v{i}" for i in range(n)])


def clique_graph(n):
    return nx.complete_graph([f"v{i}" for i in range(n)])


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    nodes = [f"v{i}" for i in range(n)]
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    possible = [(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]]
    chosen = draw(st.lists(st.sampled_from(possible), max_size=12, unique=True)) if possible else []
    graph.add_edges_from(chosen)
    return graph


class TestMcsOrder:
    def test_is_permutation(self):
        graph = cycle_graph(6)
        order = mcs_order(graph)
        assert sorted(order) == sorted(graph.nodes)

    def test_initial_pinned_first(self):
        graph = cycle_graph(6)
        order = mcs_order(graph, initial=("v3", "v5"))
        assert order[:2] == ["v3", "v5"]

    def test_initial_duplicates_ignored(self):
        graph = path_graph(4)
        order = mcs_order(graph, initial=("v0", "v0"))
        assert order[0] == "v0"
        assert sorted(order) == sorted(graph.nodes)

    def test_unknown_initial_rejected(self):
        with pytest.raises(OrderingError):
            mcs_order(path_graph(3), initial=("ghost",))

    def test_mcs_on_chordal_graph_gives_treewidth(self):
        # MCS produces a perfect elimination order on chordal graphs:
        # induced width equals treewidth.  A triangulated path of cliques:
        graph = nx.Graph()
        for i in range(5):
            graph.add_edges_from(
                [(f"a{i}", f"b{i}"), (f"a{i}", f"a{i + 1}"), (f"b{i}", f"a{i + 1}")]
            )
        order = mcs_order(graph)
        assert induced_width(graph, order) == 2

    def test_deterministic_without_rng(self):
        graph = cycle_graph(8)
        assert mcs_order(graph) == mcs_order(graph)


class TestGreedyOrders:
    @pytest.mark.parametrize("heuristic", [min_degree_order, min_fill_order])
    def test_is_permutation(self, heuristic):
        graph = cycle_graph(7)
        order = heuristic(graph)
        assert sorted(order) == sorted(graph.nodes)

    @pytest.mark.parametrize("heuristic", [min_degree_order, min_fill_order])
    def test_pinned_first(self, heuristic):
        graph = cycle_graph(7)
        order = heuristic(graph, initial=("v2",))
        assert order[0] == "v2"

    def test_min_fill_optimal_on_cycle(self):
        graph = cycle_graph(9)
        assert induced_width(graph, min_fill_order(graph)) == 2

    def test_min_degree_optimal_on_tree(self):
        tree = nx.balanced_tree(2, 3)
        assert induced_width(tree, min_degree_order(tree)) == 1

    def test_random_order_permutation_and_pin(self):
        graph = cycle_graph(5)
        order = random_order(graph, initial=("v4",), rng=random.Random(1))
        assert order[0] == "v4"
        assert sorted(order) == sorted(graph.nodes)

    def test_registry(self):
        assert set(ORDER_HEURISTICS) == {"mcs", "min_degree", "min_fill", "random"}


class TestInducedWidth:
    def test_path_any_order_at_least_one(self):
        graph = path_graph(5)
        natural = [f"v{i}" for i in range(5)]
        assert induced_width(graph, natural) == 1

    def test_path_bad_order_is_wider(self):
        graph = path_graph(5)
        # Eliminating the middle first fills in its neighbours.
        bad = ["v0", "v4", "v1", "v3", "v2"]
        assert induced_width(graph, bad) >= 1

    def test_cycle_is_two(self):
        graph = cycle_graph(6)
        order = min_fill_order(graph)
        assert induced_width(graph, order) == 2

    def test_clique_is_n_minus_one(self):
        graph = clique_graph(5)
        order = list(graph.nodes)
        assert induced_width(graph, order) == 4

    def test_non_permutation_rejected(self):
        with pytest.raises(OrderingError):
            induced_width(path_graph(3), ["v0", "v1"])

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node("x")
        assert induced_width(graph, ["x"]) == 0

    @given(small_graphs())
    def test_induced_width_bounded_by_nodes(self, graph):
        order = sorted(graph.nodes)
        width = induced_width(graph, order)
        assert 0 <= width <= max(len(order) - 1, 0)

    @given(small_graphs())
    def test_induced_width_at_least_degeneracy_floor(self, graph):
        """Any order's induced width is at least the graph's min-degree
        peeling bound (a weak but universal sanity floor)."""
        if graph.number_of_nodes() == 0:
            return
        from repro.core.treewidth import treewidth_lower_bound

        order = sorted(graph.nodes)
        assert induced_width(graph, order) >= treewidth_lower_bound(graph) - 1


class TestEliminationFronts:
    def test_fronts_cover_all_edges(self):
        graph = cycle_graph(5)
        order = sorted(graph.nodes)
        fronts = elimination_fronts(graph, order)
        for u, v in graph.edges:
            assert any({u, v} <= front for front in fronts.values())

    def test_front_sizes_match_induced_width(self):
        graph = cycle_graph(7)
        order = min_fill_order(graph)
        fronts = elimination_fronts(graph, order)
        assert max(len(front) for front in fronts.values()) - 1 == induced_width(
            graph, order
        )

    def test_each_front_contains_its_variable(self):
        graph = path_graph(4)
        fronts = elimination_fronts(graph, sorted(graph.nodes))
        for node, front in fronts.items():
            assert node in front
