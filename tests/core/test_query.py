"""Conjunctive-query model: atoms, terms, occurrence bookkeeping."""

import pytest

from repro.core.query import Atom, ConjunctiveQuery, Const
from repro.errors import QueryStructureError


@pytest.fixture
def path_query():
    return ConjunctiveQuery(
        atoms=(
            Atom("edge", ("a", "b")),
            Atom("edge", ("b", "c")),
            Atom("edge", ("c", "d")),
        ),
        free_variables=("a",),
    )


class TestAtom:
    def test_variables_first_occurrence_order(self):
        atom = Atom("r", ("y", "x", "y"))
        assert atom.variables == ("y", "x")
        assert atom.variable_set == {"x", "y"}

    def test_constants_excluded_from_variables(self):
        atom = Atom("r", ("x", Const(3)))
        assert atom.variables == ("x",)

    def test_to_scan_simple(self):
        scan = Atom("edge", ("a", "b")).to_scan()
        assert scan.relation == "edge"
        assert scan.variables == ("a", "b")
        assert scan.constants == ()

    def test_to_scan_with_constant(self):
        scan = Atom("r", ("x", Const(7))).to_scan()
        assert scan.variables == ("x",)
        assert scan.constants == ((1, 7),)

    def test_str(self):
        assert str(Atom("r", ("x", Const(1)))) == "r(x, 1)"

    def test_empty_relation_name_rejected(self):
        with pytest.raises(QueryStructureError):
            Atom("", ("x",))

    def test_empty_variable_rejected(self):
        with pytest.raises(QueryStructureError):
            Atom("r", ("",))

    def test_bad_term_type_rejected(self):
        with pytest.raises(QueryStructureError):
            Atom("r", (42,))  # bare int is neither str nor Const


class TestConjunctiveQuery:
    def test_variables(self, path_query):
        assert path_query.variables == {"a", "b", "c", "d"}

    def test_boolean_flags(self, path_query):
        assert not path_query.is_boolean
        boolean = ConjunctiveQuery(atoms=path_query.atoms)
        assert boolean.is_boolean

    def test_bound_variables(self, path_query):
        assert path_query.bound_variables == {"b", "c", "d"}

    def test_no_atoms_rejected(self):
        with pytest.raises(QueryStructureError):
            ConjunctiveQuery(atoms=())

    def test_unknown_free_variable_rejected(self):
        with pytest.raises(QueryStructureError, match="do not occur"):
            ConjunctiveQuery(
                atoms=(Atom("r", ("x",)),), free_variables=("ghost",)
            )

    def test_duplicate_free_variables_rejected(self):
        with pytest.raises(QueryStructureError, match="duplicate"):
            ConjunctiveQuery(
                atoms=(Atom("r", ("x",)),), free_variables=("x", "x")
            )


class TestOccurrences:
    def test_occurrences(self, path_query):
        occ = path_query.occurrences()
        assert occ["b"] == [0, 1]
        assert occ["d"] == [2]

    def test_min_occurrence(self, path_query):
        assert path_query.min_occurrence() == {"a": 0, "b": 0, "c": 1, "d": 2}

    def test_max_occurrence_bound_vars(self, path_query):
        max_occ = path_query.max_occurrence()
        assert max_occ["b"] == 1
        assert max_occ["d"] == 2

    def test_max_occurrence_free_vars_stay_live(self, path_query):
        # Free variables get len(atoms), mirroring max_occur = |E| + 1.
        assert path_query.max_occurrence()["a"] == 3


class TestRewriting:
    def test_with_atom_order(self, path_query):
        permuted = path_query.with_atom_order([2, 0, 1])
        assert permuted.atoms[0].variables == ("c", "d")
        assert permuted.free_variables == ("a",)

    def test_with_atom_order_rejects_non_permutation(self, path_query):
        with pytest.raises(QueryStructureError):
            path_query.with_atom_order([0, 0, 1])

    def test_with_free_variables(self, path_query):
        rewritten = path_query.with_free_variables(["b", "c"])
        assert rewritten.free_variables == ("b", "c")
        assert rewritten.atoms == path_query.atoms

    def test_relation_names(self, path_query):
        assert path_query.relation_names() == {"edge"}

    def test_str_renders(self, path_query):
        text = str(path_query)
        assert "π[a]" in text
        assert "edge(a, b)" in text
