"""Theorem 1: the join width of a project-join query is tw(G_Q) + 1.

Both constructive halves are exercised on random small queries:

- Algorithm 3 from an *optimal* tree decomposition yields a JET of width
  at most tw + 1 (and evaluating it gives the right answer);
- Algorithm 1 maps any JET back to a tree decomposition of width
  jet.width - 1, so no JET can beat tw + 1.

Together these pin the join width at exactly tw + 1.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.join_graph import join_graph
from repro.core.join_tree import (
    jet_to_plan,
    jet_to_tree_decomposition,
    optimal_jet,
    tree_decomposition_to_jet,
)
from repro.core.query import ConjunctiveQuery
from repro.core.tree_decomposition import from_elimination_order
from repro.core.treewidth import treewidth_exact, treewidth_exact_order
from repro.relalg.engine import evaluate
from repro.workloads.coloring import (
    coloring_query,
    count_colorings_brute_force,
    is_colorable_brute_force,
)
from repro.workloads.graphs import (
    Graph,
    augmented_path,
    cycle,
    grid,
    ladder,
    random_graph,
    star,
)


@st.composite
def small_color_queries(draw) -> tuple[Graph, ConjunctiveQuery]:
    order = draw(st.integers(min_value=3, max_value=7))
    max_edges = order * (order - 1) // 2
    edge_count = draw(st.integers(min_value=2, max_value=min(max_edges, 10)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_graph(order, edge_count, random.Random(seed))
    boolean = draw(st.booleans())
    if boolean:
        query = coloring_query(graph)
    else:
        touched = sorted({v for e in graph.edges for v in e})
        free_count = draw(st.integers(min_value=1, max_value=min(3, len(touched))))
        free = tuple(touched[:free_count])
        query = coloring_query(graph, free_vertices=free)
    return graph, query


@given(small_color_queries())
def test_optimal_jet_width_is_treewidth_plus_one(pair):
    _, query = pair
    tw = treewidth_exact(join_graph(query))
    jet = optimal_jet(query)
    assert jet.width <= tw + 1
    # Lower bound via Algorithm 1: a narrower JET would give a
    # decomposition below treewidth, which cannot exist.
    td = jet_to_tree_decomposition(jet)
    td.validate_for(join_graph(query))
    assert td.width >= tw
    assert jet.width == tw + 1


@given(small_color_queries())
def test_algorithm1_roundtrip_is_valid_decomposition(pair):
    _, query = pair
    jet = optimal_jet(query)
    td = jet_to_tree_decomposition(jet)
    graph = join_graph(query)
    td.validate_for(graph)
    assert td.width == jet.width - 1


@given(small_color_queries())
def test_algorithm3_from_any_order_bounds_width(pair):
    """From *any* elimination order (not just the optimal one), Algorithm 3
    produces a JET whose width is at most that order's decomposition width
    plus one — Lemma 3 in full generality."""
    _, query = pair
    graph = join_graph(query)
    order = sorted(graph.nodes)
    td = from_elimination_order(graph, order)
    jet = tree_decomposition_to_jet(query, td)
    assert jet.width <= td.width + 1


@given(small_color_queries())
def test_optimal_jet_plan_answers_correctly(pair):
    graph, query = pair
    plan = jet_to_plan(optimal_jet(query))
    from repro.relalg.database import edge_database

    result, stats = evaluate(plan, edge_database())
    assert (not result.is_empty()) == is_colorable_brute_force(graph)
    # The executed arity never exceeds the proven bound.
    tw = treewidth_exact(join_graph(query))
    assert stats.max_intermediate_arity <= tw + 1


@pytest.mark.parametrize(
    "graph,expected_tw",
    [
        (cycle(6), 2),
        (star(6), 1),
        (ladder(4), 2),
        (augmented_path(4), 1),
        (grid(3, 3), 3),
    ],
)
def test_join_width_on_known_families(graph, expected_tw):
    """Boolean 3-COLOR queries over known families: the join graph is the
    input graph (binary atoms), so join width = known treewidth + 1."""
    query = coloring_query(graph, emulate_boolean=False)
    jet = optimal_jet(query)
    assert jet.width == expected_tw + 1


def test_free_variables_force_wider_trees():
    """Pinning far-apart path endpoints as free adds a target-schema edge
    and raises the join width: π_{v1,v5} over a 4-path has join width 3."""
    graph = Graph(5, ((0, 1), (1, 2), (2, 3), (3, 4)))
    boolean = coloring_query(graph, emulate_boolean=False)
    non_boolean = coloring_query(graph, free_vertices=(0, 4))
    assert optimal_jet(boolean).width == 2
    assert optimal_jet(non_boolean).width == 3


def test_non_boolean_answer_cardinality_correct():
    """The width-optimal plan computes the exact answer relation, not just
    nonemptiness: compare against brute-force coloring counts."""
    graph = cycle(5)
    query = coloring_query(graph, free_vertices=(0, 1, 2, 3, 4))
    plan = jet_to_plan(optimal_jet(query))
    from repro.relalg.database import edge_database

    result, _ = evaluate(plan, edge_database())
    assert result.cardinality == count_colorings_brute_force(graph)


def test_exact_order_pins_free_variables_first():
    graph = ladder(3)
    query = coloring_query(graph, free_vertices=(0, 3))
    join = join_graph(query)
    _, order = treewidth_exact_order(
        join, pinned_first=frozenset(query.free_variables)
    )
    assert set(order[:2]) == set(query.free_variables)
