"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.relalg.database import edge_database
from repro.relalg.relation import Relation
from repro.workloads.coloring import coloring_instance
from repro.workloads.graphs import Graph, pentagon, random_graph

# One moderate default profile: enough examples to be meaningful, fast
# enough that the suite stays snappy.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def edge_db():
    """The paper's 3-COLOR database: one 6-tuple binary relation."""
    return edge_database()


@pytest.fixture
def pentagon_instance():
    """Appendix A's running example: the 5-cycle's 3-COLOR workload."""
    return coloring_instance(pentagon())


@pytest.fixture
def small_relation():
    return Relation(("u", "w"), [(1, 2), (2, 1), (1, 3)])


def make_random_graph(order: int, edges: int, seed: int) -> Graph:
    """Deterministic random graph helper for parametrized tests."""
    return random_graph(order, edges, random.Random(seed))
