"""The shared plan-visitor framework: walk/transform/children semantics.

Every plan consumer (engines, SQL generator, rewriter, explain, viz) is
built on these three functions, so their contracts — post-order,
bottom-up rebuilding, identity preservation — are pinned here once
rather than re-tested per consumer.
"""

from repro.plans import (
    Join,
    Project,
    Scan,
    Semijoin,
    children,
    transform,
    walk,
    with_children,
)

A = Scan("edge", ("a", "b"))
B = Scan("edge", ("b", "c"))


def small_tree():
    return Project(Join(Semijoin(A, B), B), ("a",))


class TestChildren:
    def test_arity_per_operator(self):
        assert children(A) == ()
        assert children(Join(A, B)) == (A, B)
        assert children(Semijoin(A, B)) == (A, B)
        assert children(Project(A, ("a",))) == (A,)

    def test_with_children_identity_when_unchanged(self):
        node = Join(A, B)
        assert with_children(node, (A, B)) is node

    def test_with_children_rebuilds_on_change(self):
        node = Join(A, B)
        replacement = Scan("edge", ("a", "c"))
        rebuilt = with_children(node, (replacement, B))
        assert rebuilt == Join(replacement, B)
        assert rebuilt is not node


class TestWalk:
    def test_postorder_children_before_parents(self):
        tree = small_tree()
        seen: list[int] = []
        positions: dict[int, int] = {}
        for node in walk(tree):
            positions[id(node)] = len(seen)
            seen.append(id(node))
            for child in children(node):
                assert positions[id(child)] < positions[id(node)]
        assert seen[-1] == id(tree)

    def test_left_before_right(self):
        left, right = Semijoin(A, B), Join(B, A)
        order = [id(n) for n in walk(Join(left, right))]
        assert order.index(id(left)) < order.index(id(right))

    def test_shared_subtree_yields_once_per_occurrence(self):
        shared = Join(A, B)
        tree = Join(shared, shared)
        assert sum(1 for node in walk(tree) if node is shared) == 2


class TestTransform:
    def test_no_op_returns_same_object(self):
        tree = small_tree()
        assert transform(tree, lambda node: None) is tree

    def test_untouched_siblings_preserved_by_identity(self):
        semi = Semijoin(A, B)
        tree = Join(semi, B)

        def widen_scans(node):
            if isinstance(node, Scan) and node.variables == ("b", "c"):
                return Scan("edge", ("b", "d"))
            return None

        rebuilt = transform(tree, widen_scans)
        assert rebuilt.left is not semi  # its right scan was replaced
        assert rebuilt.left.left is A  # untouched leaf kept by identity
        assert rebuilt.right == Scan("edge", ("b", "d"))

    def test_bottom_up_parent_sees_rebuilt_children(self):
        tree = Join(Project(A, ("a",)), B)
        seen_children = []

        def record(node):
            if isinstance(node, Join):
                seen_children.append(node.left)
            if isinstance(node, Project):
                return node.child  # strip projections
            return None

        transform(tree, record)
        assert seen_children == [A]

    def test_shared_subtree_transformed_consistently(self):
        shared = Semijoin(A, B)
        tree = Join(shared, shared)
        calls = []

        def count(node):
            calls.append(node)
            return None

        transform(tree, count)
        # memoized by identity: the shared subtree is offered once
        assert sum(1 for node in calls if node is shared) == 1

    def test_replacement_is_not_revisited_in_same_pass(self):
        offered = []

        def swap_semijoin_for_join(node):
            offered.append(node)
            if isinstance(node, Semijoin):
                return Join(node.left, node.right)
            return None

        rebuilt = transform(Semijoin(A, B), swap_semijoin_for_join)
        assert rebuilt == Join(A, B)
        assert all(not isinstance(node, Join) for node in offered)
