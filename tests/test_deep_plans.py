"""Deep-plan regressions: every plan consumer must be recursion-free.

The paper's scaling figures build left-deep chains thousands of joins
long; Python's default recursion limit is 1000, so any recursive
traversal breaks well inside the experimental regime.  These tests pin
the iterative implementations: construction, traversal, keying,
validation, pretty-printing, DOT export, rewriting, and both engines on
a 2000-atom left-deep chain.
"""

import time

import pytest

from repro.plans import (
    Join,
    Plan,
    Project,
    Scan,
    Semijoin,
    left_deep_join,
    plan_key,
    plan_width,
    pretty_plan,
    transform,
    validate_plan,
    walk,
)
from repro.relalg.bag_engine import bag_evaluate
from repro.relalg.database import edge_database
from repro.relalg.engine import Engine
from repro.rewrite import rewrite_plan
from repro.viz import plan_to_dot

DEPTH = 2000


def deep_join_chain(n: int = DEPTH) -> Plan:
    """Left-deep chain of ``n`` scans: ``edge(v0,v1) ⋈ edge(v1,v2) ⋈ …``."""
    return left_deep_join(
        [Scan("edge", (f"v{i}", f"v{i + 1}")) for i in range(n)]
    )


def deep_semijoin_chain(n: int = DEPTH) -> Plan:
    """Left-deep semijoin chain — same depth, but the output schema stays
    binary, so (unlike the join chain) it is cheap to *execute*."""
    plan: Plan = Scan("edge", ("x", "y"))
    for _ in range(n - 1):
        plan = Semijoin(plan, Scan("edge", ("x", "y")))
    return plan


class TestDeepTraversals:
    def test_walk_covers_whole_chain(self):
        plan = deep_join_chain()
        nodes = list(walk(plan))
        assert len(nodes) == 2 * DEPTH - 1  # n scans + (n-1) joins

    def test_plan_key_and_validate(self):
        plan = deep_join_chain()
        key = plan_key(plan)
        assert plan_key(deep_join_chain()) == key
        validate_plan(plan)

    def test_width_and_pretty(self):
        plan = deep_join_chain()
        assert plan_width(plan) == DEPTH + 1
        text = pretty_plan(plan)
        assert text.count("Scan edge") == DEPTH

    def test_dot_export(self):
        dot = plan_to_dot(deep_join_chain())
        assert dot.count("->") == 2 * (DEPTH - 1)

    def test_transform_identity_on_deep_chain(self):
        plan = deep_join_chain()
        assert transform(plan, lambda node: None) is plan

    def test_rewrite_driver_on_deep_chain(self):
        # One projection on top; the driver's per-pass transform must not
        # recurse.  A few passes suffice to reach the fixpoint here.
        plan = Project(deep_join_chain(200), ("v0", "v200"))
        rewritten = rewrite_plan(plan, max_passes=3)
        assert plan_width(rewritten) <= plan_width(plan)


class TestDeepExecution:
    def test_engine_executes_deep_semijoin_chain(self):
        db = edge_database()
        plan = deep_semijoin_chain()
        base = Engine(db).execute(Scan("edge", ("x", "y")))
        for cache_size in (0, 128):
            result = Engine(db, plan_cache_size=cache_size).execute(plan)
            assert result == base  # reducers remove nothing here

    def test_compiled_engine_executes_deep_semijoin_chain(self):
        # Both the compiler (post-order over 2000 nodes) and both run
        # drivers (cached and uncached) must be stack-based; the _Unit
        # dataclass also disables generated __repr__/__eq__, which would
        # recurse through `children`.
        from repro.relalg.compiled import CompiledEngine

        db = edge_database()
        plan = deep_semijoin_chain()
        base = Engine(db).execute(Scan("edge", ("x", "y")))
        for cache_size in (0, 128):
            engine = CompiledEngine(db, plan_cache_size=cache_size)
            result, cstats = engine.execute_with_stats(plan)
            assert result == base
            _, istats = Engine(
                db, plan_cache_size=cache_size
            ).execute_with_stats(plan)
            assert cstats.semijoins == istats.semijoins
            assert (
                cstats.total_intermediate_tuples
                == istats.total_intermediate_tuples
            )
            assert cstats.arity_trace == istats.arity_trace

    def test_vectorized_engine_executes_deep_semijoin_chain(self):
        # The vectorized lowering shares the iterative compiler and run
        # drivers, but its scan/semijoin kernels (and the columnar scan
        # binding) are new code paths — pin them at full depth too.
        from repro.relalg.compiled import VectorizedEngine

        db = edge_database()
        plan = deep_semijoin_chain()
        base = Engine(db).execute(Scan("edge", ("x", "y")))
        for cache_size in (0, 128):
            engine = VectorizedEngine(db, plan_cache_size=cache_size)
            result, vstats = engine.execute_with_stats(plan)
            assert result == base
            _, istats = Engine(
                db, plan_cache_size=cache_size
            ).execute_with_stats(plan)
            assert vstats.semijoins == istats.semijoins
            assert (
                vstats.total_intermediate_tuples
                == istats.total_intermediate_tuples
            )
            assert vstats.arity_trace == istats.arity_trace

    def test_vectorized_deep_chain_is_linearish(self):
        """8x the chain must cost nowhere near 64x: compile is one
        post-order pass, every semijoin kernel reuses the base store's
        memoized key index, and unfiltered semijoins return the input
        batch zero-copy — all linear in depth."""
        from repro.relalg.compiled import VectorizedEngine

        db = edge_database()

        def measure(n: int) -> float:
            plan = deep_semijoin_chain(n)
            engine = VectorizedEngine(db, plan_cache_size=0)
            start = time.perf_counter()
            engine.execute(plan)
            return time.perf_counter() - start

        measure(250)  # warm-up (interns values, builds the key index)
        small = max(measure(250), 1e-3)
        big = measure(2000)
        assert big <= max(32 * small, 0.25), (small, big)

    def test_bag_engine_executes_deep_semijoin_chain(self):
        db = edge_database()
        result, _ = bag_evaluate(deep_semijoin_chain(), db)
        assert result == Engine(db).execute(Scan("edge", ("x", "y")))

    def test_explain_deep_semijoin_chain(self):
        from repro.explain import explain

        result = explain(deep_semijoin_chain(500), edge_database())
        assert result.result.cardinality == 6


class TestColumnsMemoization:
    def test_columns_and_key_are_cached_objects(self):
        plan = deep_join_chain(50)
        assert plan.columns is plan.columns
        assert plan_key(plan) is plan_key(plan)

    def test_schema_computation_is_linearish(self):
        """Growing the chain 8x must not cost anywhere near 64x.

        The chain joins the *same* binding repeatedly, so every schema
        stays binary and the total schema size is linear in node count.
        Without per-node memoization (or with a fill that re-walks
        already-cached subtrees), accessing every node's ``arity`` — what
        ``plan_width`` does — is quadratic; memoized and pruned, it is
        one post-order pass.  8x the size is ~64x the work quadratically
        but ~8x linearly; the 32x threshold splits the regimes with a
        wide margin for timer noise.
        """

        def measure(n: int) -> float:
            scans = [Scan("edge", ("x", "y")) for _ in range(n)]
            start = time.perf_counter()
            plan = left_deep_join(scans)
            plan_width(plan)
            plan_key(plan)
            return time.perf_counter() - start

        measure(400)  # warm-up
        small = max(measure(400), 1e-3)
        big = measure(3200)
        assert big <= max(32 * small, 0.25), (small, big)


def test_deep_chain_well_below_recursion_limit_headroom():
    """Meta-check: the chain really is deeper than the recursion limit,
    so the tests above would fail against a recursive implementation."""
    import sys

    assert DEPTH > sys.getrecursionlimit()
