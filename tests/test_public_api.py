"""The public API surface: imports resolve, __all__ is honest, and the
README quickstart actually works."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.relalg",
        "repro.plans",
        "repro.core",
        "repro.sql",
        "repro.workloads",
        "repro.experiments",
        "repro.errors",
    ],
)
def test_submodules_import(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart():
    from repro import coloring_instance, evaluate, pentagon, plan_query

    instance = coloring_instance(pentagon())
    plan = plan_query(instance.query, "bucket")
    result, stats = evaluate(plan, instance.database)
    assert result.cardinality == 3
    assert stats.max_intermediate_arity <= 3


def test_error_hierarchy():
    from repro.errors import (
        CatalogError,
        OrderingError,
        PlanError,
        QueryStructureError,
        ReproError,
        SchemaError,
        SqlSemanticError,
        SqlSyntaxError,
        TimeoutExceeded,
        WorkloadError,
    )

    for exc in (
        SchemaError,
        CatalogError,
        PlanError,
        SqlSyntaxError,
        SqlSemanticError,
        QueryStructureError,
        OrderingError,
        TimeoutExceeded,
        WorkloadError,
    ):
        assert issubclass(exc, ReproError)


def test_sql_syntax_error_carries_position():
    from repro.errors import SqlSyntaxError

    error = SqlSyntaxError("boom", position=17)
    assert error.position == 17


def test_cli_entry_point_exists():
    from repro.experiments.__main__ import build_argument_parser

    parser = build_argument_parser()
    args = parser.parse_args(["fig3", "--seeds", "2"])
    assert args.figure == "fig3"
    assert args.seeds == 2
