"""The `python -m repro` command line."""

import pytest

from repro.__main__ import build_argument_parser, main
from repro.relalg.database import edge_database
from repro.relalg.io import save_database

RULE = "q(X) :- edge(X, Y), edge(Y, Z)."


@pytest.fixture
def db_dir(tmp_path):
    save_database(edge_database(), tmp_path / "db")
    return str(tmp_path / "db")


class TestParser:
    def test_subcommands(self):
        parser = build_argument_parser()
        for command in ("plan", "sql", "run", "analyze", "minimize"):
            args = (
                [command, RULE, "--db", "x"]
                if command == "run"
                else [command, RULE]
            )
            assert parser.parse_args(args).command == command

    def test_method_choices(self):
        parser = build_argument_parser()
        args = parser.parse_args(["plan", RULE, "--method", "early"])
        assert args.method == "early"
        with pytest.raises(SystemExit):
            parser.parse_args(["plan", RULE, "--method", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_argument_parser().parse_args([])


class TestCommands:
    def test_plan(self, capsys):
        assert main(["plan", RULE]) == 0
        out = capsys.readouterr().out
        assert "width" in out
        assert "Scan edge" in out

    def test_plan_dot(self, capsys):
        assert main(["plan", RULE, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_sql(self, capsys):
        assert main(["sql", RULE, "--method", "straightforward"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("SELECT DISTINCT")
        assert "JOIN" in out

    def test_sql_jointree_falls_back(self, capsys):
        assert main(["sql", RULE, "--method", "jointree"]) == 0
        assert "SELECT" in capsys.readouterr().out

    def test_sql_yannakakis_emits_exists(self, capsys):
        assert main(["sql", RULE, "--method", "yannakakis"]) == 0
        assert "EXISTS" in capsys.readouterr().out

    def test_run(self, capsys, db_dir):
        assert main(["run", RULE, "--db", db_dir]) == 0
        out = capsys.readouterr().out
        assert "3 rows" in out

    @pytest.mark.parametrize("algorithm", ["hash", "sort_merge", "nested_loop"])
    def test_run_join_algorithm_flag(self, capsys, db_dir, algorithm):
        assert main(
            ["run", RULE, "--db", db_dir, "--join-algorithm", algorithm]
        ) == 0
        assert "3 rows" in capsys.readouterr().out

    def test_run_no_plan_cache_flag(self, capsys, db_dir):
        assert main(["run", RULE, "--db", db_dir, "--no-plan-cache"]) == 0
        assert "3 rows" in capsys.readouterr().out

    def test_run_unknown_join_algorithm_rejected(self, db_dir):
        with pytest.raises(SystemExit):
            main(["run", RULE, "--db", db_dir, "--join-algorithm", "nope"])

    def test_run_compiled_engine(self, capsys, db_dir):
        assert main(["run", RULE, "--db", db_dir, "--engine", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "3 rows" in out

    def test_run_unknown_engine_rejected(self, db_dir):
        with pytest.raises(SystemExit):
            main(["run", RULE, "--db", db_dir, "--engine", "jitted"])

    def test_run_compiled_engine_rejects_non_hash_join(self, capsys, db_dir):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", RULE, "--db", db_dir, "--engine", "compiled",
                 "--join-algorithm", "nested_loop"]
            )
        assert excinfo.value.code == 2
        assert "hash" in capsys.readouterr().err

    def test_run_explain(self, capsys, db_dir):
        assert main(["run", RULE, "--db", db_dir, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "estimated=" in out
        assert "-- 3 rows" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "q() :- edge(X, Y), edge(Y, Z), edge(Z, X)."]) == 0
        out = capsys.readouterr().out
        assert "acyclic (GYO)  : False" in out
        assert "treewidth      : 2" in out
        assert "GHW (bound)    : 2" in out

    def test_analyze_acyclic(self, capsys):
        assert main(["analyze", "q(X) :- edge(X, Y)."]) == 0
        out = capsys.readouterr().out
        assert "acyclic (GYO)  : True" in out
        assert "GHW (bound)    : 1" in out

    def test_minimize(self, capsys):
        assert main(["minimize", "q(X) :- edge(X, Y), edge(X, Z)."]) == 0
        out = capsys.readouterr().out
        assert "1 join(s) removed" in out

    def test_minimize_already_minimal(self, capsys):
        assert main(["minimize", "q(X) :- edge(X, Y)."]) == 0
        assert "already minimal" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "method",
        ["straightforward", "early", "reordering", "bucket", "jointree", "yannakakis"],
    )
    def test_every_method_plans(self, capsys, method):
        # RULE is an acyclic chain, so even "yannakakis" plans it.
        assert main(["plan", RULE, "--method", method]) == 0


class TestProgramCommand:
    def test_program_runs(self, capsys, tmp_path):
        path = tmp_path / "p.dl"
        path.write_text(
            "edge(1, 2). edge(2, 3). edge(3, 1).\n"
            "q(X) :- edge(X, Y), edge(Y, Z), edge(Z, X).\n"
        )
        assert main(["program", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 rows" in out

    def test_run_without_db_errors(self, capsys):
        assert main(["run", RULE]) == 2
        assert "required" in capsys.readouterr().err

    def test_program_execution_flags(self, capsys, tmp_path):
        path = tmp_path / "p.dl"
        path.write_text(
            "edge(1, 2). edge(2, 3). edge(3, 1).\n"
            "q(X) :- edge(X, Y), edge(Y, Z), edge(Z, X).\n"
        )
        assert main(
            ["program", str(path), "--join-algorithm", "sort_merge", "--no-plan-cache"]
        ) == 0
        assert "3 rows" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_subcommand_registered(self):
        args = build_argument_parser().parse_args(["serve"])
        assert args.command == "serve"

    def test_serve_defaults(self):
        args = build_argument_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7411
        assert args.db == []
        assert args.edge_db == []
        assert args.queue_limit == 256
        assert args.request_timeout == 30.0
        assert args.batch_max == 16
        assert args.max_sessions == 1024
        assert args.prepared_cache_size == 256
        assert args.default_engine == "interpreted"
        assert args.default_method == "bucket"
        assert args.workers == 0  # pool off by default: legacy in-process path
        assert args.replicas == 1

    def test_serve_flags_parse(self):
        args = build_argument_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--db", "a=dir1",
                "--db", "b=dir2",
                "--edge-db", "colors",
                "--default-engine", "vectorized",
                "--default-method", "early",
            ]
        )
        assert args.port == 0
        assert args.db == ["a=dir1", "b=dir2"]
        assert args.edge_db == ["colors"]
        assert args.default_engine == "vectorized"
        assert args.default_method == "early"

    def test_serve_pool_knobs_parse(self):
        args = build_argument_parser().parse_args(
            ["serve", "--workers", "4", "--replicas", "2"]
        )
        assert args.workers == 4
        assert args.replicas == 2

    def test_serve_pool_knobs_reach_config(self):
        from repro.service import QueryService, ServiceConfig
        from repro.relalg.database import edge_database

        args = build_argument_parser().parse_args(
            ["serve", "--workers", "3", "--replicas", "1"]
        )
        config = ServiceConfig(workers=args.workers, replicas=args.replicas)
        service = QueryService({"default": edge_database()}, config)
        assert service.config.workers == 3
        assert service._pool is not None
        assert service._pool.workers == 3

    def test_serve_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_argument_parser().parse_args(
                ["serve", "--default-engine", "nope"]
            )

    def test_serve_bad_db_spec_exits_2(self, capsys):
        assert main(["serve", "--db", "no-separator"]) == 2
        assert "NAME=DIR" in capsys.readouterr().err
