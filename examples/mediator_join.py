"""A mediator-style large join: many small sources, one big query.

The paper's introduction motivates its setup with mediator-based systems
(Yerneni et al.): a mediator answers one query by joining many small
relations exported by different sources, so join queries with dozens of
atoms over small relations are the norm — exactly where cost-based
planning collapses and structure-based planning shines.

Here a travel mediator joins per-leg flight fragments from many regional
sources to find multi-hop itineraries.  Each source exports a tiny
``leg_i(from, to)`` relation; the mediator's query chains them.  We
compare the straightforward plan with bucket elimination and show the
planner-simulator compile cost for the naive form of the same query.

Run with::

    python examples/mediator_join.py
"""

import random

from repro import Atom, ConjunctiveQuery, Database, Relation, evaluate, plan_query
from repro.sql import plan_naive, plan_straightforward

CITIES = ["AUS", "HOU", "DFW", "ORD", "JFK", "LAX", "SEA", "SFO", "DEN", "ATL"]
HOPS = 12
SOURCES = 6


def build_sources(rng: random.Random) -> Database:
    """Each regional source exports a small random set of direct legs."""
    database = Database()
    for source in range(SOURCES):
        legs = set()
        while len(legs) < 8:
            a, b = rng.sample(CITIES, 2)
            legs.add((a, b))
        database.add(f"leg{source + 1}", Relation(("orig", "dest"), legs))
    return database


def build_itinerary_query(rng: random.Random) -> ConjunctiveQuery:
    """A HOPS-leg itinerary where each hop may come from any source the
    mediator routes it to; endpoints of the trip stay free."""
    atoms = []
    for hop in range(HOPS):
        source = rng.randrange(SOURCES) + 1
        atoms.append(Atom(f"leg{source}", (f"city{hop}", f"city{hop + 1}")))
    return ConjunctiveQuery(
        atoms=tuple(atoms), free_variables=("city0", f"city{HOPS}")
    )


def main() -> None:
    rng = random.Random(11)
    database = build_sources(rng)
    query = build_itinerary_query(rng)
    print(f"mediator query: {len(query.atoms)} joins over {SOURCES} sources")
    print()

    for method in ("straightforward", "early", "bucket"):
        plan = plan_query(query, method)
        result, stats = evaluate(plan, database)
        print(
            f"{method:>16}: {result.cardinality:>3} itinerary endpoints, "
            f"max arity {stats.max_intermediate_arity}, "
            f"{stats.total_intermediate_tuples} intermediate tuples"
        )
    print()

    naive = plan_naive(query, database, rng=random.Random(0))
    straight = plan_straightforward(query, database)
    print("planner effort for the same query (Figure 2's phenomenon):")
    print(f"  naive form  : {naive.plans_costed} candidate joins costed ({naive.strategy})")
    print(f"  pinned order: {straight.plans_costed} costed (order given in the SQL)")


if __name__ == "__main__":
    main()
