"""3-SAT as database queries: the Section 7 workload, end to end.

A CNF formula is satisfiable iff its conjunctive-query encoding (one
relation per clause sign-pattern, holding every assignment but the
falsifying one) is nonempty.  This script sweeps random 3-SAT across the
phase transition (density ~4.26) and shows bucket elimination deciding
instances the straightforward order struggles with, plus agreement with a
brute-force oracle.

Run with::

    python examples/sat_solving.py
"""

import random

from repro import evaluate, plan_query
from repro.workloads import is_satisfiable_brute_force, random_ksat, sat_instance


def main() -> None:
    rng = random.Random(2024)
    variables = 10
    print(f"random 3-SAT, {variables} variables, 5 instances per density")
    print()
    header = f"{'density':>8}  {'sat rate':>8}  {'bucket tuples':>13}  {'straight tuples':>15}"
    print(header)
    print("-" * len(header))
    for density in (2.0, 3.0, 4.3, 5.5, 7.0):
        sat_count = 0
        bucket_tuples = 0
        straight_tuples = 0
        trials = 5
        for trial in range(trials):
            formula = random_ksat(
                variables,
                round(density * variables),
                random.Random(trial * 1000 + round(density * 10)),
            )
            query, database = sat_instance(formula)
            bucket_plan = plan_query(query, "bucket")
            result, stats = evaluate(bucket_plan, database)
            satisfiable = not result.is_empty()
            assert satisfiable == is_satisfiable_brute_force(formula)
            sat_count += satisfiable
            bucket_tuples += stats.total_intermediate_tuples
            _, s_stats = evaluate(plan_query(query, "straightforward"), database)
            straight_tuples += s_stats.total_intermediate_tuples
        print(
            f"{density:>8.1f}  {sat_count}/{trials:>6}  "
            f"{bucket_tuples // trials:>13}  {straight_tuples // trials:>15}"
        )
    print()
    print("bucket elimination's advantage persists on SAT queries,")
    print("matching the paper's Section 7 consistency claim.")


if __name__ == "__main__":
    main()
