"""Join minimization via canonical databases — Section 7's suggestion.

The Chandra-Merlin approach minimizes the *number of joins* in a query;
the test at its heart — is there a homomorphism folding one query into
another? — means evaluating a conjunctive query over a canonical
database.  The paper points out its structural techniques apply directly
to that evaluation.  This script demonstrates:

1. a redundant mediator-style query that minimization shrinks;
2. the containment test deciding view usability (is every answer of the
   specialized query also produced by the general one?);
3. bucket elimination doing the underlying homomorphism work.

Run with::

    python examples/query_minimization.py
"""

from repro import Atom, ConjunctiveQuery
from repro.core import is_contained, minimize


def main() -> None:
    # A generated query with redundancy: several atoms only re-derive
    # facts already forced by others (common in machine-written queries
    # from view unfolding).
    redundant = ConjunctiveQuery(
        atoms=(
            Atom("flight", ("origin", "hub")),
            Atom("flight", ("origin", "alt_hub")),   # folds onto hub
            Atom("flight", ("hub", "dest")),
            Atom("flight", ("alt_hub", "extra")),    # folds too
        ),
        free_variables=("origin", "dest"),
    )
    minimal = minimize(redundant)
    print(f"original query : {redundant}")
    print(f"minimized query: {minimal}")
    print(f"joins saved    : {len(redundant.atoms) - len(minimal.atoms)}")
    print()

    # Containment: a 2-hop itinerary query is contained in the 1-hop
    # reachability query (every 2-hop start is a 1-hop start), not vice
    # versa.
    two_hop = ConjunctiveQuery(
        atoms=(Atom("flight", ("a", "b")), Atom("flight", ("b", "c"))),
        free_variables=("a",),
    )
    one_hop = ConjunctiveQuery(
        atoms=(Atom("flight", ("a", "b")),),
        free_variables=("a",),
    )
    print(f"two_hop ⊆ one_hop: {is_contained(two_hop, one_hop)}")
    print(f"one_hop ⊆ two_hop: {is_contained(one_hop, two_hop)}")
    print()
    print("Both decisions ran a conjunctive query over a canonical database")
    print("using bucket elimination — the paper's Section 7 suggestion.")


if __name__ == "__main__":
    main()
