"""Appendix A, executable: the pentagon query as SQL, five ways.

The paper's Appendix A walks one conjunctive query — the pentagon's
3-COLOR query — through all five SQL constructions.  This script
regenerates those listings with this repo's generator, then parses and
executes each one on the in-memory backend to show they all return the
same answer while doing very different amounts of work.

Run with::

    python examples/sql_showcase.py
"""

from repro import coloring_instance, pentagon
from repro.sql import SQL_METHODS, execute_with_stats, generate_sql, parse


def main() -> None:
    instance = coloring_instance(pentagon())
    for method in SQL_METHODS:
        text = generate_sql(instance.query, method)
        print(f"--- {method} " + "-" * (60 - len(method)))
        print(text)
        result, stats = execute_with_stats(parse(text), instance.database)
        print(
            f"-- result rows: {result.cardinality}, "
            f"intermediate tuples: {stats.total_intermediate_tuples}, "
            f"max arity: {stats.max_intermediate_arity}"
        )
        print()


if __name__ == "__main__":
    main()
