"""EXPLAIN and rule-based rewriting: watching projection pushing work.

Two of the repo's Section 7 extensions in one script:

1. ``explain`` annotates a plan with estimated vs actual cardinalities —
   and shows why the cost model misleads a planner on these queries (its
   multiplicative error compounds join over join);
2. the rewrite engine's default rules (the algebraic projection-pushing
   laws) mechanically transform the straightforward plan into a
   narrow early-projection plan.

Run with::

    python examples/explain_and_rewrite.py
"""

from repro import (
    coloring_instance,
    explain,
    normalize,
    plan_width,
    plan_query,
    pretty_plan,
)
from repro.workloads import augmented_path


def main() -> None:
    instance = coloring_instance(augmented_path(4))

    straight = plan_query(instance.query, "straightforward")
    print(f"straightforward plan, width {plan_width(straight)}")
    result = explain(straight, instance.database)
    print(result.render())
    print(f"worst cardinality-estimate error: {result.max_estimation_error():.1f}x")
    print()

    pushed = normalize(straight)
    print(
        f"after rule-based projection pushing, width {plan_width(pushed)} "
        f"(was {plan_width(straight)}):"
    )
    print(pretty_plan(pushed))
    print()

    pushed_result = explain(pushed, instance.database)
    assert pushed_result.result == result.result
    print(
        "same answer, "
        f"{result.result.cardinality} rows; rewritten plan verified equal."
    )


if __name__ == "__main__":
    main()
