"""Register allocation as a project-join query.

A classic application of graph coloring: variables of a program that are
live at the same time (an *interference* edge) must not share a CPU
register.  With k registers, allocability is exactly k-colorability — so
it is exactly a Boolean project-join query over the k-COLOR ``edge``
relation, and a *non-Boolean* query whose free variables are the program
variables returns the actual register assignments.

This script builds a small interference graph, asks whether 3 registers
suffice, and then extracts one concrete assignment by making every vertex
free — the paper's non-Boolean setting pushed to 100% free variables.

Run with::

    python examples/register_allocation.py
"""

from repro import evaluate, plan_query
from repro.workloads import Graph, coloring_instance
from repro.workloads.coloring import variable_name

#: Program variables and which pairs interfere (are live simultaneously).
PROGRAM_VARIABLES = ["a", "b", "c", "d", "e", "f"]
INTERFERENCE = [
    ("a", "b"), ("a", "c"), ("b", "c"),  # a, b, c alive together
    ("c", "d"), ("d", "e"), ("e", "f"), ("d", "f"),
]


def build_interference_graph() -> Graph:
    index = {name: i for i, name in enumerate(PROGRAM_VARIABLES)}
    edges = tuple((index[u], index[v]) for u, v in INTERFERENCE)
    return Graph(len(PROGRAM_VARIABLES), edges)


def main() -> None:
    graph = build_interference_graph()

    # 1. Feasibility: Boolean query, bucket elimination.
    feasibility = coloring_instance(graph, colors=3)
    plan = plan_query(feasibility.query, "bucket")
    result, stats = evaluate(plan, feasibility.database)
    print(f"3 registers sufficient: {not result.is_empty()}")
    print(
        f"(decided with max intermediate arity "
        f"{stats.max_intermediate_arity}, {stats.total_intermediate_tuples} tuples)"
    )
    print()

    # 2. Assignment extraction: make every program variable free.
    assignment_query = coloring_instance(
        graph, colors=3
    ).query.with_free_variables(
        [variable_name(i) for i in range(len(PROGRAM_VARIABLES))]
    )
    plan = plan_query(assignment_query, "bucket")
    result, _ = evaluate(plan, feasibility.database)
    print(f"{result.cardinality} valid register assignments; one of them:")
    row = sorted(result.rows)[0]
    for program_variable, register in zip(PROGRAM_VARIABLES, row):
        print(f"  {program_variable} -> r{register}")


if __name__ == "__main__":
    main()
