"""Quickstart: plan and run one project-join query five ways.

The pentagon (a 5-cycle) is 3-colorable, so its 3-COLOR query is nonempty.
This script plans it with each of the paper's methods, executes the plans
on the in-memory engine, and prints the work each plan did — watch the
``max arity`` column drop from the straightforward method down to bucket
elimination, which is the paper's whole story in one table.

Run with::

    python examples/quickstart.py
"""

from repro import coloring_instance, evaluate, pentagon, plan_query, plan_width
from repro.core import METHODS
from repro.errors import QueryStructureError


def main() -> None:
    instance = coloring_instance(pentagon())
    print(f"query: {instance.query}")
    print(f"database: edge relation with {instance.database['edge'].cardinality} tuples")
    print()
    header = f"{'method':>16}  {'rows':>5}  {'max arity':>9}  {'tuples moved':>12}  {'joins':>5}"
    print(header)
    print("-" * len(header))
    for method in METHODS:
        try:
            plan = plan_query(instance.query, method)
        except QueryStructureError:
            # "yannakakis" needs an acyclic query; the pentagon is a cycle.
            print(f"{method:>16}  requires an acyclic query (the pentagon is not)")
            continue
        result, stats = evaluate(plan, instance.database)
        print(
            f"{method:>16}  {result.cardinality:>5}  "
            f"{stats.max_intermediate_arity:>9}  "
            f"{stats.total_intermediate_tuples:>12}  {stats.joins:>5}"
        )
    plan = plan_query(instance.query, "bucket")
    print()
    print(f"bucket-elimination plan (width {plan_width(plan)}):")
    from repro import pretty_plan

    print(pretty_plan(plan))


if __name__ == "__main__":
    main()
